//! The execution engine: one configuration, one runner, one report.
//!
//! [`RunConfig`] fixes everything that varies between runs — RNG seed,
//! [`ExecMode`], worker-thread count, instrumentation — and
//! [`Runner::run`] executes any [`Executable`] under it inside a
//! **persistent, process-wide cached thread pool** keyed by the resolved
//! thread count: the first run at a given width spawns the pool's workers,
//! every later run (and every round inside a run) reuses them, so a batch
//! of `ri` requests pays for thread creation once. Sequential-mode runs
//! and `threads == 1` configs bypass the pool entirely and execute inline
//! on the caller with ambient parallelism pinned to 1 — their reports
//! carry zero scheduler overhead. The three per-class adapters
//! ([`Type1Adapter`], [`Type2Adapter`], [`Type3Adapter`]) make every
//! algorithm written against the paper's `Type1Algorithm` /
//! `Type2Algorithm` / `Type3Algorithm` traits executable through this one
//! path; the algorithm crates' `*Problem` types build on the same engine
//! for their specialised (non-trait) implementations.

use rayon::prelude::*;

use crate::type1::Type1Algorithm;
use crate::type2::Type2Algorithm;
use crate::type3::{prefix_rounds, Type3Algorithm};

use super::grain;
use super::report::RunReport;
use super::scratch::{self, RoundScratch};

/// How the engine schedules iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Run iterations one at a time in insertion order — the classic
    /// sequential randomized incremental algorithm.
    Sequential,
    /// Run the paper's parallel schedule for the algorithm's class.
    Parallel,
    /// Run the round loops over a k-relaxed priority scheduler
    /// ([`ri_pram::relaxed::MultiQueue`](ri_pram::MultiQueue)): iterations
    /// are pulled in two-choice relaxed priority order instead of exact
    /// round order, trading at most O(k·poly-log) extra work (Alistarh,
    /// Koval & Nadiradze) for barrier-free scheduling. Answers equal
    /// [`ExecMode::Parallel`]; the round *trace* is mode-specific, so
    /// witness replay gates relaxed records on answer equality only.
    Relaxed {
        /// The relaxation factor: number of internal queues, and the
        /// bound on pop-rank error. Must be at least 1 (`relaxed:0` is
        /// rejected at parse time; [`RunConfig::relaxed`] clamps).
        k: usize,
    },
}

impl ExecMode {
    /// Lower-case name (stable; used by the JSON form). Borrowed for the
    /// fixed modes; `relaxed:k` carries its parameter.
    pub fn as_str(&self) -> std::borrow::Cow<'static, str> {
        match self {
            ExecMode::Sequential => "sequential".into(),
            ExecMode::Parallel => "parallel".into(),
            ExecMode::Relaxed { k } => format!("relaxed:{k}").into(),
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.as_str())
    }
}

/// Error parsing an [`ExecMode`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseExecModeError {
    /// The name matched no known mode.
    UnknownMode(String),
    /// A `relaxed:k` form whose `k` was not an unsigned integer.
    BadRelaxation(String),
    /// `relaxed:0` — a zero-relaxed scheduler is meaningless (exact
    /// order is `relaxed:1`).
    ZeroRelaxation,
}

impl std::fmt::Display for ParseExecModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseExecModeError::UnknownMode(s) => write!(
                f,
                "unknown exec mode `{s}` (expected `sequential`, `parallel` or `relaxed:k`)"
            ),
            ParseExecModeError::BadRelaxation(s) => write!(
                f,
                "bad relaxation in `relaxed:{s}`: expected an unsigned integer k"
            ),
            ParseExecModeError::ZeroRelaxation => {
                write!(f, "`relaxed:0` is not a mode: k must be at least 1")
            }
        }
    }
}

impl std::error::Error for ParseExecModeError {}

impl std::str::FromStr for ExecMode {
    type Err = ParseExecModeError;

    /// Accepts exactly the [`ExecMode::as_str`] names (the stable JSON
    /// vocabulary: `sequential`, `parallel`, `relaxed:k` with `k >= 1`),
    /// plus the common short forms `seq` / `par`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sequential" | "seq" => Ok(ExecMode::Sequential),
            "parallel" | "par" => Ok(ExecMode::Parallel),
            other => match other.strip_prefix("relaxed:") {
                Some(k_text) => match k_text.parse::<usize>() {
                    Ok(0) => Err(ParseExecModeError::ZeroRelaxation),
                    Ok(k) => Ok(ExecMode::Relaxed { k }),
                    Err(_) => Err(ParseExecModeError::BadRelaxation(k_text.to_string())),
                },
                None => Err(ParseExecModeError::UnknownMode(other.to_string())),
            },
        }
    }
}

/// Run configuration: seed, mode, worker threads, instrumentation.
///
/// Built fluently; field and builder method share names (fields are public
/// for reading, methods consume and return `self` for writing):
///
/// ```
/// use ri_core::engine::{ExecMode, RunConfig};
/// let cfg = RunConfig::new().seed(42).sequential().threads(2).instrument(false);
/// assert_eq!(cfg.seed, 42);
/// assert_eq!(cfg.mode, ExecMode::Sequential);
/// assert_eq!(cfg.resolved_threads(), 1); // sequential mode pins one worker
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunConfig {
    /// RNG seed for runs that draw their own randomness (insertion orders,
    /// priorities). Ignored by problems whose input fixes the order.
    pub seed: u64,
    /// Scheduling mode.
    pub mode: ExecMode,
    /// Worker-thread count; `None` uses the machine default.
    pub threads: Option<usize>,
    /// Record per-phase and total wall times in the report.
    pub instrument: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 0,
            mode: ExecMode::Parallel,
            threads: None,
            instrument: true,
        }
    }
}

impl RunConfig {
    /// Parallel mode, seed 0, machine-default threads, instrumented.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the scheduling mode.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for `.mode(ExecMode::Sequential)`.
    pub fn sequential(self) -> Self {
        self.mode(ExecMode::Sequential)
    }

    /// Shorthand for `.mode(ExecMode::Parallel)`.
    pub fn parallel(self) -> Self {
        self.mode(ExecMode::Parallel)
    }

    /// Shorthand for `.mode(ExecMode::Relaxed { k })` (`k` clamped to at
    /// least 1 — `relaxed:1` is exact priority order).
    pub fn relaxed(self, k: usize) -> Self {
        self.mode(ExecMode::Relaxed { k: k.max(1) })
    }

    /// Set the worker-thread count (`0` restores the machine default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = (threads > 0).then_some(threads);
        self
    }

    /// Toggle instrumentation (phase and wall-time recording).
    pub fn instrument(mut self, on: bool) -> Self {
        self.instrument = on;
        self
    }

    /// Serialize to a single-line JSON object mirroring
    /// [`RunReport::to_json`]'s hand-rolled format (`threads` is `null`
    /// when the machine default applies).
    ///
    /// JSON numbers are f64, so seeds at or above 2⁵³ may not round-trip
    /// exactly; the envelope layer rejects them at the door.
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }

    /// The config as a JSON [`Value`] (`threads` is `null` when the
    /// machine default applies).
    pub fn to_value(&self) -> super::json::Value {
        use super::json::Value;
        Value::Obj(vec![
            ("seed".into(), Value::Num(self.seed as f64)),
            ("mode".into(), Value::Str(self.mode.as_str().into())),
            (
                "threads".into(),
                match self.threads {
                    Some(t) => Value::Num(t as f64),
                    None => Value::Null,
                },
            ),
            ("instrument".into(), Value::Bool(self.instrument)),
        ])
    }

    /// Parse a config back from JSON. Unlike [`RunReport::from_json`],
    /// missing fields take their [`RunConfig::default`] values — a config
    /// is a request, not a record, so partial requests are welcome —
    /// but present fields must be well-formed.
    pub fn from_json(text: &str) -> Result<RunConfig, super::json::ParseError> {
        Self::from_value(&super::json::parse(text)?)
    }

    /// Parse a config from an already-parsed JSON value.
    pub fn from_value(v: &super::json::Value) -> Result<RunConfig, super::json::ParseError> {
        use super::json::{ParseError, Value};
        let bad = |key: &str| ParseError {
            message: format!("malformed config field `{key}`"),
            at: 0,
        };
        let mut cfg = RunConfig::default();
        if let Some(seed) = v.get("seed") {
            cfg.seed = seed.as_u64().ok_or_else(|| bad("seed"))?;
        }
        if let Some(mode) = v.get("mode") {
            cfg.mode = mode
                .as_str()
                .ok_or_else(|| bad("mode"))?
                .parse()
                .map_err(|e| ParseError {
                    message: format!("malformed config field `mode`: {e}"),
                    at: 0,
                })?;
        }
        match v.get("threads") {
            None | Some(Value::Null) => {}
            // 0 means machine default, exactly as in the `threads` builder.
            Some(t) => {
                let t = t.as_usize().ok_or_else(|| bad("threads"))?;
                cfg.threads = (t > 0).then_some(t);
            }
        }
        if let Some(i) = v.get("instrument") {
            cfg.instrument = match i {
                Value::Bool(b) => *b,
                _ => return Err(bad("instrument")),
            };
        }
        Ok(cfg)
    }

    /// Worker threads a run under this config uses: 1 in sequential mode,
    /// otherwise the configured count, falling back to the ambient/machine
    /// default. A serving process that wants a fixed width pins it
    /// explicitly per request (see [`Runner::pool`]) instead of relying on
    /// process-global state.
    pub fn resolved_threads(&self) -> usize {
        match self.mode {
            ExecMode::Sequential => 1,
            ExecMode::Parallel | ExecMode::Relaxed { .. } => self
                .threads
                .unwrap_or_else(rayon::current_num_threads)
                .max(1),
        }
    }
}

/// Something the engine can execute: the per-class adapters implement this
/// over the paper's algorithm traits, and specialised algorithms implement
/// it directly.
pub trait Executable {
    /// Report label; [`Runner::run`] stamps it onto the report's
    /// `algorithm` field.
    fn name(&self) -> &str {
        "algorithm"
    }

    /// Execute under `cfg` (already inside the runner's thread pool) and
    /// fill a report. Implementations should honour `cfg.mode` and
    /// `cfg.instrument`; threads and wall time are stamped by the runner.
    fn execute(&mut self, cfg: &RunConfig) -> RunReport;
}

/// A problem instance solvable under a [`RunConfig`]: the uniform
/// problem-level API every algorithm crate exposes (`SortProblem`,
/// `DelaunayProblem`, `LpProblem`, ...).
pub trait Problem {
    /// The algorithm's answer (tree, mesh, optimum, components, ...).
    type Output;

    /// Solve under `cfg`, returning the answer and the unified report.
    fn solve(&self, cfg: &RunConfig) -> (Self::Output, RunReport);
}

/// The engine facade: executes algorithms under a [`RunConfig`] inside a
/// scoped thread pool.
#[derive(Debug, Clone)]
pub struct Runner {
    cfg: RunConfig,
}

impl Runner {
    /// A runner for `cfg`.
    pub fn new(cfg: RunConfig) -> Self {
        Runner { cfg }
    }

    /// Eagerly build (or fetch) the cached persistent pool for `threads`
    /// workers (`0` means the machine default). This replaces the old
    /// first-call-wins `install_global`: pool width is now **explicit
    /// per-caller config**, so two serving tiers in one process — or N
    /// router-spawned backend processes — can each pin their own width
    /// (pools are cached per width and shared by everyone who asks for
    /// that width). Callers that want every solve clamped to a fixed
    /// width set `config.threads` on each request; nothing is decided by
    /// process-global state.
    pub fn pool(threads: usize) -> std::sync::Arc<rayon::ThreadPool> {
        let width = if threads == 0 {
            rayon::current_num_threads()
        } else {
            threads
        };
        rayon::cached_pool(width.max(1))
    }

    /// The configuration this runner applies.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// Run `op` under this runner's parallelism (for specialised
    /// algorithms that drive their own parallelism): inside the cached
    /// persistent pool for its thread count, or strictly inline when the
    /// config resolves to one worker (sequential mode or `threads == 1`),
    /// so sequential reports carry zero scheduler overhead.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let threads = self.cfg.resolved_threads();
        if threads <= 1 {
            return rayon::run_sequential(op);
        }
        rayon::cached_pool(threads).install(op)
    }

    /// Execute `algo` under this runner's config: scope the thread pool,
    /// run, and stamp name/mode/threads/wall time — plus the scratch and
    /// region counters measured by the runner's [`RoundScratch`]
    /// workspace — on the report. The scratch/region deltas are measured
    /// on the calling thread, which is where the executors' round loops
    /// (and their reused buffers) live.
    pub fn run<E: Executable + ?Sized>(&self, algo: &mut E) -> RunReport {
        let threads = self.cfg.resolved_threads();
        let workspace = RoundScratch::begin();
        let t0 = std::time::Instant::now();
        let mut report = self.install(|| algo.execute(&self.cfg));
        report.algorithm = algo.name().to_string();
        report.mode = self.cfg.mode;
        report.threads = threads;
        if self.cfg.instrument {
            report.wall_seconds = t0.elapsed().as_secs_f64();
        }
        let (hits, misses) = workspace.scratch_delta();
        report.scratch_hits = hits;
        report.scratch_misses = misses;
        report.regions = workspace.regions_delta();
        report.helper_spawns = workspace.helper_spawns_delta();
        report
    }
}

/// Adapter: run a [`Type1Algorithm`] through the engine.
pub struct Type1Adapter<'a, A: ?Sized>(pub &'a mut A);

impl<A: Type1Algorithm + ?Sized> Executable for Type1Adapter<'_, A> {
    fn name(&self) -> &str {
        "type1"
    }
    fn execute(&mut self, cfg: &RunConfig) -> RunReport {
        execute_type1(self.0, cfg)
    }
}

/// Adapter: run a [`Type2Algorithm`] through the engine.
pub struct Type2Adapter<'a, A: ?Sized>(pub &'a mut A);

impl<A: Type2Algorithm + ?Sized> Executable for Type2Adapter<'_, A> {
    fn name(&self) -> &str {
        "type2"
    }
    fn execute(&mut self, cfg: &RunConfig) -> RunReport {
        execute_type2(self.0, cfg)
    }
}

/// Adapter: run a [`Type3Algorithm`] through the engine.
pub struct Type3Adapter<'a, A: ?Sized>(pub &'a mut A);

impl<A: Type3Algorithm + ?Sized> Executable for Type3Adapter<'_, A> {
    fn name(&self) -> &str {
        "type3"
    }
    fn execute(&mut self, cfg: &RunConfig) -> RunReport {
        execute_type3(self.0, cfg)
    }
}

/// The Type 1 executor (§2.1): parallel mode runs rounds of all ready
/// iterations (rounds = iteration dependence depth); sequential mode runs
/// iterations in insertion order; relaxed mode pulls k-sized batches from
/// a [`MultiQueue`] in relaxed priority order, runs the ready ones, and
/// re-enqueues conflicts (`wasted_retries`). Iterations still run only
/// when `ready`, so the answer is the sequential one in every mode.
///
/// Panics if no progress is possible (an incorrectly encoded dependence
/// graph).
pub fn execute_type1<A: Type1Algorithm + ?Sized>(algo: &mut A, cfg: &RunConfig) -> RunReport {
    let n = algo.len();
    let mut report = RunReport::new("type1");
    report.items = n;
    match cfg.mode {
        ExecMode::Sequential => {
            for k in 0..n {
                algo.begin_round(k);
                assert!(
                    algo.ready(k),
                    "Type 1 executor stalled: iteration {k} not ready in insertion order"
                );
                algo.run(k);
            }
            if n > 0 {
                report.record_round(n, n as u64);
            }
            report.depth = n;
        }
        ExecMode::Parallel => {
            // All three per-round buffers come from (and return to) the
            // runner's scratch workspace: steady-state rounds allocate
            // nothing, and repeated runs on one thread reuse capacity.
            let mut remaining: Vec<usize> = scratch::take_vec();
            remaining.extend(0..n);
            let mut next: Vec<usize> = scratch::take_vec();
            let mut flags: Vec<bool> = scratch::take_vec();
            let mut round = 0usize;
            while !remaining.is_empty() {
                algo.begin_round(round);
                // Check phase (read-only; all checks observe the state at
                // round start), then run phase (sequential within the
                // round: iterations that run together are mutually
                // independent, so any order gives the sequential
                // algorithm's result). Small rounds — the long tail —
                // check inline instead of paying region setup.
                flags.clear();
                if grain::parallel_round(remaining.len()) {
                    flags.resize(remaining.len(), false);
                    let chunk = remaining.len().div_ceil(rayon::recommended_splits());
                    flags
                        .par_chunks_mut(chunk)
                        .zip(remaining.par_chunks(chunk))
                        .for_each(|(fs, ks)| {
                            for (f, &k) in fs.iter_mut().zip(ks) {
                                *f = algo.ready(k);
                            }
                        });
                } else {
                    flags.extend(remaining.iter().map(|&k| algo.ready(k)));
                }
                // Run-and-compact in one pass over the reused buffers.
                let mut ran = 0usize;
                next.clear();
                for (&k, &ready) in remaining.iter().zip(flags.iter()) {
                    if ready {
                        ran += 1;
                    } else {
                        next.push(k);
                    }
                }
                assert!(
                    ran > 0,
                    "Type 1 executor stalled with {} iterations remaining",
                    remaining.len()
                );
                for (&k, &ready) in remaining.iter().zip(flags.iter()) {
                    if ready {
                        algo.run(k);
                    }
                }
                std::mem::swap(&mut remaining, &mut next);
                report.record_round(ran, ran as u64);
                round += 1;
            }
            report.depth = round;
            scratch::put_vec(remaining);
            scratch::put_vec(next);
            scratch::put_vec(flags);
        }
        ExecMode::Relaxed { k } => {
            // Every iteration enters a k-relaxed MultiQueue under its
            // own index as priority; workers would pull batches in
            // two-choice relaxed order. Pops happen on the round loop's
            // coordinating thread (the `run` contract is `&mut`), so the
            // schedule is deterministic per seed; readiness checks fan
            // out over the crews like the exact executor's check phase.
            let mq = ri_pram::MultiQueue::new(k, cfg.seed);
            for i in 0..n {
                mq.push(i as u64, i);
            }
            let mut batch: Vec<(u64, usize)> = scratch::take_vec();
            let mut flags: Vec<bool> = scratch::take_vec();
            let mut round = 0usize;
            let mut wasted = 0u64;
            // Batch size k matches the scheduler's relaxation; after a
            // batch with no ready iteration, drain everything — the
            // minimum remaining index is always ready (its predecessors
            // all ran), so a full drain guarantees progress.
            let mut want = k.max(1);
            loop {
                batch.clear();
                if mq.pop_batch(want, &mut batch) == 0 {
                    break;
                }
                algo.begin_round(round);
                flags.clear();
                if grain::parallel_round(batch.len()) {
                    flags.resize(batch.len(), false);
                    let chunk = batch.len().div_ceil(rayon::recommended_splits());
                    flags
                        .par_chunks_mut(chunk)
                        .zip(batch.par_chunks(chunk))
                        .for_each(|(fs, bb)| {
                            for (f, &(_, i)) in fs.iter_mut().zip(bb) {
                                *f = algo.ready(i);
                            }
                        });
                } else {
                    flags.extend(batch.iter().map(|&(_, i)| algo.ready(i)));
                }
                let mut ran = 0usize;
                for (&(prio, i), &ready) in batch.iter().zip(flags.iter()) {
                    if ready {
                        algo.run(i);
                        ran += 1;
                    } else {
                        mq.push(prio, i);
                        wasted += 1;
                    }
                }
                if ran == 0 {
                    assert!(
                        want < usize::MAX,
                        "Type 1 executor stalled with {} iterations remaining",
                        mq.len()
                    );
                    want = usize::MAX;
                } else {
                    want = k.max(1);
                }
                report.record_round(batch.len(), ran as u64);
                round += 1;
            }
            report.depth = round;
            report.rank_inversions = mq.rank_inversions();
            report.wasted_retries = wasted;
            scratch::put_vec(batch);
            scratch::put_vec(flags);
        }
    }
    report
}

/// The Type 2 executor — Algorithm 1 of the paper (§2.2) in parallel mode,
/// the classic sequential dispatch loop in sequential mode. Fills
/// `specials`, `sub_rounds` and `checks`; round entries are one per prefix
/// (parallel) or one summary entry (sequential).
///
/// Relaxed mode keeps the prefix-doubling structure but **evaluates** each
/// sub-round's specialness checks in k-relaxed [`MultiQueue`] pop order
/// instead of exact index order. Commits stay exact — the earliest special
/// in the tail still wins, and regular iterations still run in index order
/// against the same frozen prefix state — so answers and the special trace
/// are identical to exact parallel, while `rank_inversions` measures how
/// far the relaxed evaluation schedule strayed and `wasted_retries` counts
/// checks beyond the committed special that an exact short-circuiting scan
/// could have skipped.
pub fn execute_type2<A: Type2Algorithm + ?Sized>(algo: &mut A, cfg: &RunConfig) -> RunReport {
    let n = algo.len();
    let mut report = RunReport::new("type2");
    report.items = n;
    match cfg.mode {
        ExecMode::Sequential => {
            for k in 0..n {
                algo.begin_prefix(k, k + 1);
                report.checks += 1;
                if algo.is_special(k) {
                    report.specials.push(k);
                    algo.run_special(k);
                } else {
                    algo.run_regular(k);
                }
            }
            if n > 0 {
                report.record_round(n, report.checks);
            }
            report.depth = n;
        }
        ExecMode::Parallel => {
            let mut lo = 0usize;
            let mut width = 1usize;
            while lo < n {
                let hi = (lo + width).min(n);
                algo.begin_prefix(lo, hi);
                let mut sub_rounds = 0usize;
                let mut prefix_checks = 0u64;
                let mut j = lo;
                while j < hi {
                    sub_rounds += 1;
                    prefix_checks += (hi - j) as u64;
                    // Check phase over the outstanding prefix tail; find
                    // the earliest special iteration (min-reduction).
                    // Short tails — every early prefix, and every tail
                    // after a late special — scan inline instead of
                    // paying region setup.
                    let l = if grain::parallel_round(hi - j) {
                        (j..hi)
                            .into_par_iter()
                            .find_first(|&k| algo.is_special(k))
                            .unwrap_or(hi)
                    } else {
                        (j..hi).find(|&k| algo.is_special(k)).unwrap_or(hi)
                    };
                    for k in j..l {
                        algo.run_regular(k);
                    }
                    if l < hi {
                        report.specials.push(l);
                        algo.run_special(l);
                        j = l + 1;
                    } else {
                        j = hi;
                    }
                }
                report.checks += prefix_checks;
                report.sub_rounds.push(sub_rounds);
                report.record_round(hi - lo, prefix_checks);
                lo = hi;
                width *= 2;
            }
            report.depth = report.total_sub_rounds();
        }
        ExecMode::Relaxed { k } => {
            let mq = ri_pram::MultiQueue::new(k, cfg.seed);
            let mut order: Vec<(u64, usize)> = scratch::take_vec();
            let mut flags: Vec<bool> = scratch::take_vec();
            let mut wasted = 0u64;
            let mut lo = 0usize;
            let mut width = 1usize;
            while lo < n {
                let hi = (lo + width).min(n);
                algo.begin_prefix(lo, hi);
                let mut sub_rounds = 0usize;
                let mut prefix_checks = 0u64;
                let mut j = lo;
                while j < hi {
                    sub_rounds += 1;
                    prefix_checks += (hi - j) as u64;
                    // Draw the tail's evaluation order from the relaxed
                    // queue (epoch reset: each sub-round restarts its
                    // priorities), check specialness in that order, then
                    // commit the earliest special exactly.
                    mq.begin_epoch();
                    for i in j..hi {
                        mq.push(i as u64, i);
                    }
                    order.clear();
                    mq.pop_batch(usize::MAX, &mut order);
                    flags.clear();
                    if grain::parallel_round(order.len()) {
                        flags.resize(order.len(), false);
                        let chunk = order.len().div_ceil(rayon::recommended_splits());
                        flags
                            .par_chunks_mut(chunk)
                            .zip(order.par_chunks(chunk))
                            .for_each(|(fs, oo)| {
                                for (f, &(_, i)) in fs.iter_mut().zip(oo) {
                                    *f = algo.is_special(i);
                                }
                            });
                    } else {
                        flags.extend(order.iter().map(|&(_, i)| algo.is_special(i)));
                    }
                    let l = order
                        .iter()
                        .zip(flags.iter())
                        .filter(|(_, &special)| special)
                        .map(|(&(_, i), _)| i)
                        .min()
                        .unwrap_or(hi);
                    wasted += order.iter().filter(|&&(_, i)| i > l).count() as u64;
                    for i in j..l {
                        algo.run_regular(i);
                    }
                    if l < hi {
                        report.specials.push(l);
                        algo.run_special(l);
                        j = l + 1;
                    } else {
                        j = hi;
                    }
                }
                report.checks += prefix_checks;
                report.sub_rounds.push(sub_rounds);
                report.record_round(hi - lo, prefix_checks);
                lo = hi;
                width *= 2;
            }
            report.depth = report.total_sub_rounds();
            report.rank_inversions = mq.rank_inversions();
            report.wasted_retries = wasted;
            scratch::put_vec(order);
            scratch::put_vec(flags);
        }
    }
    report
}

/// The Type 3 executor — Algorithm 2 of the paper (§2.3) in parallel mode
/// (doubling rounds against the previous round's frozen state, then
/// combine); sequential mode runs width-1 rounds, i.e. the classic
/// sequential incremental algorithm.
pub fn execute_type3<A: Type3Algorithm + ?Sized>(algo: &mut A, cfg: &RunConfig) -> RunReport {
    let n = algo.len();
    let mut report = RunReport::new("type3");
    report.items = n;
    // One output buffer serves every round (and, in sequential mode,
    // every iteration): `combine` drains it, `clear` keeps the capacity.
    let mut outputs: Vec<A::Output> = Vec::new();
    match cfg.mode {
        ExecMode::Sequential => {
            let mut total_work = 0u64;
            for k in 0..n {
                let out = algo.run_iteration(k);
                outputs.clear();
                outputs.push(out);
                total_work += algo.combine(k, &mut outputs);
            }
            if n > 0 {
                report.record_round(n, total_work);
            }
            report.depth = n;
        }
        ExecMode::Parallel => {
            let rounds = prefix_rounds(n);
            report.depth = rounds.len();
            for (lo, hi) in rounds {
                // Small rounds (the first log n of them combined hold
                // fewer items than the last) run inline on the caller.
                if grain::parallel_round(hi - lo) {
                    (lo..hi)
                        .into_par_iter()
                        .map(|k| algo.run_iteration(k))
                        .collect_into_vec(&mut outputs);
                } else {
                    outputs.clear();
                    outputs.extend((lo..hi).map(|k| algo.run_iteration(k)));
                }
                let work = algo.combine(lo, &mut outputs);
                report.record_round(hi - lo, work);
            }
        }
        ExecMode::Relaxed { k } => {
            // The frozen-state contract already bounds relaxation to
            // within a round: every iteration of a round reads only the
            // previous round's state, so running them in k-relaxed pop
            // order changes nothing but the schedule. Outputs are sorted
            // back into index order before `combine`, keeping answers
            // bit-identical to parallel mode.
            let mq = ri_pram::MultiQueue::new(k, cfg.seed);
            let mut order: Vec<(u64, usize)> = scratch::take_vec();
            // `A::Output` need not be `'static`, so this buffer stays a
            // plain per-call Vec rather than a scratch-arena loan.
            let mut pairs: Vec<(usize, A::Output)> = Vec::new();
            let rounds = prefix_rounds(n);
            report.depth = rounds.len();
            for (lo, hi) in rounds {
                mq.begin_epoch();
                for i in lo..hi {
                    mq.push(i as u64, i);
                }
                order.clear();
                mq.pop_batch(usize::MAX, &mut order);
                pairs.clear();
                pairs.extend(order.iter().map(|&(_, i)| (i, algo.run_iteration(i))));
                pairs.sort_unstable_by_key(|&(i, _)| i);
                outputs.clear();
                outputs.extend(pairs.drain(..).map(|(_, out)| out));
                let work = algo.combine(lo, &mut outputs);
                report.record_round(hi - lo, work);
            }
            report.rank_inversions = mq.rank_inversions();
            scratch::put_vec(order);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_mode_round_trips_through_from_str() {
        for mode in [
            ExecMode::Sequential,
            ExecMode::Parallel,
            ExecMode::Relaxed { k: 1 },
            ExecMode::Relaxed { k: 64 },
        ] {
            assert_eq!(mode.as_str().parse::<ExecMode>().unwrap(), mode);
        }
        assert_eq!("seq".parse::<ExecMode>().unwrap(), ExecMode::Sequential);
        assert_eq!("par".parse::<ExecMode>().unwrap(), ExecMode::Parallel);
        assert_eq!(
            "relaxed:8".parse::<ExecMode>().unwrap(),
            ExecMode::Relaxed { k: 8 }
        );
        let err = "sideways".parse::<ExecMode>().unwrap_err();
        assert!(err.to_string().contains("sideways"));
    }

    #[test]
    fn exec_mode_rejects_bad_relaxations() {
        let zero = "relaxed:0".parse::<ExecMode>().unwrap_err();
        assert_eq!(zero, ParseExecModeError::ZeroRelaxation);
        assert!(zero.to_string().contains("at least 1"));
        let junk = "relaxed:many".parse::<ExecMode>().unwrap_err();
        assert_eq!(junk, ParseExecModeError::BadRelaxation("many".into()));
        assert!(junk.to_string().contains("many"));
        // A bare `relaxed` has no k and is not a mode either.
        assert!("relaxed".parse::<ExecMode>().is_err());
    }

    #[test]
    fn relaxed_config_round_trips_and_clamps() {
        let cfg = RunConfig::new().relaxed(16).seed(5);
        assert_eq!(cfg.mode, ExecMode::Relaxed { k: 16 });
        assert_eq!(RunConfig::from_json(&cfg.to_json()).unwrap(), cfg);
        // k = 0 clamps to 1 through the builder; the parser rejects it.
        assert_eq!(RunConfig::new().relaxed(0).mode, ExecMode::Relaxed { k: 1 });
        assert!(RunConfig::from_json("{\"mode\":\"relaxed:0\"}").is_err());
    }

    #[test]
    fn run_config_json_round_trips() {
        let cfg = RunConfig::new().seed(42).sequential().threads(3);
        assert_eq!(RunConfig::from_json(&cfg.to_json()).unwrap(), cfg);
        let dflt = RunConfig::default();
        assert_eq!(RunConfig::from_json(&dflt.to_json()).unwrap(), dflt);
    }

    #[test]
    fn run_config_partial_json_takes_defaults() {
        let cfg = RunConfig::from_json("{\"mode\":\"sequential\"}").unwrap();
        assert_eq!(cfg, RunConfig::default().sequential());
        assert_eq!(RunConfig::from_json("{}").unwrap(), RunConfig::default());
        // `threads: null` means machine default, same as absent.
        let cfg = RunConfig::from_json("{\"threads\":null,\"seed\":9}").unwrap();
        assert_eq!(cfg, RunConfig::default().seed(9));
    }

    #[test]
    fn run_config_rejects_malformed_fields() {
        assert!(RunConfig::from_json("{\"mode\":\"sideways\"}").is_err());
        assert!(RunConfig::from_json("{\"seed\":-1}").is_err());
        assert!(RunConfig::from_json("{\"threads\":1.5}").is_err());
        assert!(RunConfig::from_json("{\"instrument\":1}").is_err());
        assert!(RunConfig::from_json("not json").is_err());
    }
}
