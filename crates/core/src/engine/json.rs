//! Minimal JSON support for [`RunReport`](super::RunReport) serialization.
//!
//! The bench harness consumes run reports as JSON lines; with no serde
//! available offline, this module implements the small subset of JSON the
//! report format needs: objects, arrays, strings, finite numbers, booleans
//! and null. Numbers are emitted through Rust's shortest-round-trip float
//! formatting, so `parse(write(v)) == v` for every value a report contains.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (serialized via shortest round-trip formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Unsigned-integer accessor (checked).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().and_then(|x| {
            (x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64).then_some(x as u64)
        })
    }

    /// Usize accessor (checked).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to compact JSON.
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => {
                debug_assert!(x.is_finite(), "JSON numbers must be finite");
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    // `{:?}` is Rust's shortest round-trip float form.
                    let _ = write!(out, "{x:?}");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document (the subset [`Value`] models).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing input", pos));
    }
    Ok(value)
}

fn err(message: &str, at: usize) -> ParseError {
    ParseError {
        message: message.to_string(),
        at,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected `{}`", b as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: Value,
) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(&format!("expected `{lit}`"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("bad utf-8", start))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| err("invalid number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).ok_or_else(|| err("bad codepoint", *pos))?);
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err("bad utf-8", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(err("expected `,` or `]`", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(err("expected `,` or `}`", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("a \"b\"\nc".into())),
            (
                "xs".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Num(0.25), Value::Num(-3.0)]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
        ]);
        let text = v.write();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123_456_789.123_456_7, 0.0] {
            let v = Value::Num(x);
            assert_eq!(parse(&v.write()).unwrap(), v);
        }
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Value::Num(42.0).write(), "42");
        assert_eq!(Value::Num(-7.0).write(), "-7");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , \"\\u0041\\n\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("A\n")
        );
    }
}
