//! The serving envelope: the typed request/response/error shapes every
//! transport speaks.
//!
//! PR 2 fixed the wire contract — `{problem, workload, config}` in,
//! `{problem, workload, config, summary, report}` out — but the parsing,
//! defaulting and seed-validation logic lived inside the `ri` CLI binary.
//! This module hoists it into the library so the CLI, the `ri-serve`
//! HTTP server, the `loadgen` client and the tests all share **one**
//! parse path with identical defaults:
//!
//! * [`ServeRequest`] — problem name + [`WorkloadSpec`] + [`RunConfig`],
//!   with JSON round-trip, the CLI's defaulting rules (absent `workload.n`
//!   means 1024; absent sections take their type defaults) and the 2⁵³
//!   seed limit that keeps echoed requests exactly replayable;
//! * [`ServeResponse`] — the request echo plus [`OutputSummary`] and
//!   [`RunReport`], with JSON round-trip both ways (a client can
//!   reconstruct the typed response from the wire);
//! * [`ServeError`] — a structured, JSON-able error with a stable kebab
//!   `kind` vocabulary and an HTTP status mapping, so transport errors are
//!   data, not dropped connections.
//!
//! ```
//! use ri_core::engine::envelope::ServeRequest;
//!
//! let req = ServeRequest::from_json(
//!     r#"{"problem":"sort","workload":{"n":256,"seed":7},"config":{"mode":"parallel"}}"#,
//! )
//! .unwrap();
//! assert_eq!(req.problem, "sort");
//! assert_eq!(req.workload.n, 256);
//! let back = ServeRequest::from_json(&req.to_json()).unwrap();
//! assert_eq!(back, req);
//! ```

use super::json::{self, Value};
use super::registry::{OutputSummary, RegistryError, WorkloadSpec};
use super::report::RunReport;
use super::runner::RunConfig;

/// Seeds must stay strictly below 2⁵³ (the JSON layer is f64): any larger
/// integer in a request either is unrepresentable or rounds to at least
/// 2⁵³, so rejecting `seed >= 2^53` catches every over-limit input
/// regardless of rounding direction, and a response's echoed request
/// always replays to the run it documents.
pub const SEED_LIMIT: u64 = 1 << 53;

/// Default instance size when a request omits `workload.n` entirely (an
/// explicit `"n": 0` is passed through so the constructor can reject it,
/// exactly like `--n 0` on the CLI flags path).
pub const DEFAULT_N: usize = 1024;

/// Validate that `seed` round-trips through JSON; `name` labels the field
/// in the error message.
pub fn check_seed(name: &str, seed: u64) -> Result<u64, ServeError> {
    if seed >= SEED_LIMIT {
        return Err(ServeError::bad_request(format!(
            "{name} {seed} is not below 2^53 and cannot round-trip through the JSON response"
        )));
    }
    Ok(seed)
}

/// What went wrong with a serve request, as a stable kebab-case
/// vocabulary. Every kind maps to an HTTP status; transports that are not
/// HTTP (the CLI) just print the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeErrorKind {
    /// The request body failed to parse or validate (400).
    BadRequest,
    /// No problem registered under the requested name (404).
    UnknownProblem,
    /// The problem's constructor rejected the workload spec (400).
    BadWorkload,
    /// The path does not exist (404).
    NotFound,
    /// The path exists but not under this method (405).
    MethodNotAllowed,
    /// The request body exceeds the server's size limit (413).
    BodyTooLarge,
    /// The admission gate or queue-depth limit rejected the request (503).
    Overloaded,
    /// The request waited in the queue past its deadline (504).
    DeadlineExceeded,
    /// The solve panicked or the executor failed (500).
    Internal,
}

impl ServeErrorKind {
    /// The stable kebab-case name (the JSON `kind` field).
    pub fn as_str(&self) -> &'static str {
        match self {
            ServeErrorKind::BadRequest => "bad-request",
            ServeErrorKind::UnknownProblem => "unknown-problem",
            ServeErrorKind::BadWorkload => "bad-workload",
            ServeErrorKind::NotFound => "not-found",
            ServeErrorKind::MethodNotAllowed => "method-not-allowed",
            ServeErrorKind::BodyTooLarge => "body-too-large",
            ServeErrorKind::Overloaded => "overloaded",
            ServeErrorKind::DeadlineExceeded => "deadline-exceeded",
            ServeErrorKind::Internal => "internal",
        }
    }

    /// Every kind, for round-trip parsing and tests.
    pub const ALL: [ServeErrorKind; 9] = [
        ServeErrorKind::BadRequest,
        ServeErrorKind::UnknownProblem,
        ServeErrorKind::BadWorkload,
        ServeErrorKind::NotFound,
        ServeErrorKind::MethodNotAllowed,
        ServeErrorKind::BodyTooLarge,
        ServeErrorKind::Overloaded,
        ServeErrorKind::DeadlineExceeded,
        ServeErrorKind::Internal,
    ];

    /// Whether a request failing with this kind is safe and sensible to
    /// retry (against another shard, or later): the request never ran —
    /// it was shed at admission ([`ServeErrorKind::Overloaded`]) or timed
    /// out in the queue ([`ServeErrorKind::DeadlineExceeded`]). Every
    /// solve is deterministic and side-effect-free, so retrying can never
    /// double-apply anything; the kinds marked non-retryable would just
    /// fail identically anywhere (malformed request, unknown problem, a
    /// deterministic panic).
    pub fn default_retryable(&self) -> bool {
        matches!(
            self,
            ServeErrorKind::Overloaded | ServeErrorKind::DeadlineExceeded
        )
    }

    /// The HTTP status this kind maps to.
    pub fn http_status(&self) -> u16 {
        match self {
            ServeErrorKind::BadRequest | ServeErrorKind::BadWorkload => 400,
            ServeErrorKind::UnknownProblem | ServeErrorKind::NotFound => 404,
            ServeErrorKind::MethodNotAllowed => 405,
            ServeErrorKind::BodyTooLarge => 413,
            ServeErrorKind::Overloaded => 503,
            ServeErrorKind::DeadlineExceeded => 504,
            ServeErrorKind::Internal => 500,
        }
    }
}

impl std::str::FromStr for ServeErrorKind {
    type Err = json::ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ServeErrorKind::ALL
            .into_iter()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| json::ParseError {
                message: format!("unknown error kind `{s}`"),
                at: 0,
            })
    }
}

/// A structured serve-layer error: kind + human-readable message.
/// Serializes as `{"error":{"kind":...,"message":...}}` so clients can
/// always distinguish an error body from a response body by its single
/// `error` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// What category of failure this is.
    pub kind: ServeErrorKind,
    /// What went wrong, for humans.
    pub message: String,
    /// Whether retrying the request (elsewhere, or later) can succeed —
    /// what a router keys its failover decision on. Defaults to the
    /// kind's [`ServeErrorKind::default_retryable`]; the field is
    /// additive in the JSON form, so parsers of the pre-field envelope
    /// keep working and old envelopes parse to the kind default.
    pub retryable: bool,
}

impl ServeError {
    /// An error of `kind` with `message` and the kind's default
    /// retryability.
    pub fn new(kind: ServeErrorKind, message: impl Into<String>) -> Self {
        ServeError {
            kind,
            message: message.into(),
            retryable: kind.default_retryable(),
        }
    }

    /// Override the retryability (e.g. a router marking its synthesized
    /// all-shards-down 503 as retryable-later).
    pub fn retryable(mut self, retryable: bool) -> Self {
        self.retryable = retryable;
        self
    }

    /// Shorthand for a [`ServeErrorKind::BadRequest`] error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(ServeErrorKind::BadRequest, message)
    }

    /// The HTTP status of this error's kind.
    pub fn http_status(&self) -> u16 {
        self.kind.http_status()
    }

    /// The error as a JSON [`Value`].
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![(
            "error".into(),
            Value::Obj(vec![
                ("kind".into(), Value::Str(self.kind.as_str().into())),
                ("message".into(), Value::Str(self.message.clone())),
                ("retryable".into(), Value::Bool(self.retryable)),
            ]),
        )])
    }

    /// Serialize to a single-line JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }

    /// Parse an error back from its JSON form.
    pub fn from_json(text: &str) -> Result<ServeError, json::ParseError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parse an error from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<ServeError, json::ParseError> {
        let bad = |what: &str| json::ParseError {
            message: format!("malformed error envelope: {what}"),
            at: 0,
        };
        let inner = v.get("error").ok_or_else(|| bad("missing `error` key"))?;
        let kind: ServeErrorKind = inner
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing `kind`"))?
            .parse()?;
        let message = inner
            .get("message")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing `message`"))?
            .to_string();
        // Additive field: absent (pre-field envelopes) means the kind
        // default; present must be a bool.
        let retryable = match inner.get("retryable") {
            None => kind.default_retryable(),
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err(bad("non-bool `retryable`")),
        };
        Ok(ServeError {
            kind,
            message,
            retryable,
        })
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ServeError {}

impl From<RegistryError> for ServeError {
    fn from(e: RegistryError) -> Self {
        let kind = match &e {
            RegistryError::UnknownProblem { .. } => ServeErrorKind::UnknownProblem,
            RegistryError::BadWorkload { .. } => ServeErrorKind::BadWorkload,
        };
        ServeError::new(kind, e.to_string())
    }
}

impl From<json::ParseError> for ServeError {
    fn from(e: json::ParseError) -> Self {
        ServeError::bad_request(e.to_string())
    }
}

/// One solve request: which problem, what instance, under which config.
/// The canonical JSON form is
/// `{"problem": <name>, "workload": {...}, "config": {...}}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// The registered problem name.
    pub problem: String,
    /// Instance generator parameters.
    pub workload: WorkloadSpec,
    /// Execution configuration.
    pub config: RunConfig,
}

impl ServeRequest {
    /// A request for `problem` with default workload (n = [`DEFAULT_N`])
    /// and config.
    pub fn new(problem: impl Into<String>) -> Self {
        ServeRequest {
            problem: problem.into(),
            workload: WorkloadSpec::new(DEFAULT_N, 0),
            config: RunConfig::default(),
        }
    }

    /// Parse a request from JSON text, applying the shared defaulting
    /// rules: absent `workload`/`config` sections take their defaults,
    /// absent `workload.n` means [`DEFAULT_N`], and both seeds must stay
    /// below 2⁵³ so the response echo replays exactly.
    pub fn from_json(text: &str) -> Result<ServeRequest, ServeError> {
        let v = json::parse(text).map_err(|e| ServeError::bad_request(format!("bad JSON: {e}")))?;
        Self::from_value(&v)
    }

    /// Parse a request from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<ServeRequest, ServeError> {
        let problem = v
            .get("problem")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::bad_request("request needs a string `problem` field"))?
            .to_string();
        let workload = v.get("workload");
        if let Some(p) = workload
            .and_then(|w| w.get("param"))
            .and_then(Value::as_f64)
        {
            // Report a non-finite param (e.g. the literal 1e999, which
            // the number parser reads as +inf) as the structured
            // bad-workload error rather than a generic parse failure:
            // the request is well-formed JSON, the *workload* is bad.
            if !p.is_finite() {
                return Err(ServeError::new(
                    ServeErrorKind::BadWorkload,
                    format!("workload param {p} is not finite"),
                ));
            }
        }
        let mut spec = match workload {
            Some(w) => WorkloadSpec::from_value(w).map_err(ServeError::from)?,
            None => WorkloadSpec::new(0, 0),
        };
        // Default the size only when the field is genuinely absent — an
        // explicit "n": 0 must reach the constructor and fail there,
        // exactly like `--n 0` does on the CLI flags path.
        if workload.and_then(|w| w.get("n")).is_none() {
            spec.n = DEFAULT_N;
        }
        check_seed("workload.seed", spec.seed)?;
        let config = match v.get("config") {
            Some(c) => RunConfig::from_value(c).map_err(ServeError::from)?,
            None => RunConfig::default(),
        };
        check_seed("config.seed", config.seed)?;
        Ok(ServeRequest {
            problem,
            workload: spec,
            config,
        })
    }

    /// The request as a JSON [`Value`].
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("problem".into(), Value::Str(self.problem.clone())),
            ("workload".into(), self.workload.to_value()),
            ("config".into(), self.config.to_value()),
        ])
    }

    /// Serialize to a single-line JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }
}

/// One solve response: the request echo (problem + workload + config
/// replay exactly the documented run) plus the output digest and the
/// unified report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The solved problem's name.
    pub problem: String,
    /// The workload that was constructed.
    pub workload: WorkloadSpec,
    /// The config the run actually used (a server may clamp `threads` to
    /// its shared pool width; the echo documents the effective value).
    pub config: RunConfig,
    /// The output digest (`answer` is mode-invariant).
    pub summary: OutputSummary,
    /// The unified execution record.
    pub report: RunReport,
}

impl ServeResponse {
    /// The response as a JSON [`Value`].
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("problem".into(), Value::Str(self.problem.clone())),
            ("workload".into(), self.workload.to_value()),
            ("config".into(), self.config.to_value()),
            ("summary".into(), self.summary.to_value()),
            ("report".into(), self.report.to_value()),
        ])
    }

    /// Serialize to a single-line JSON object (exactly the `ri` CLI's
    /// output line).
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }

    /// Parse a response back from its JSON form.
    pub fn from_json(text: &str) -> Result<ServeResponse, json::ParseError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parse a response from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<ServeResponse, json::ParseError> {
        let field = |key: &str| {
            v.get(key).ok_or_else(|| json::ParseError {
                message: format!("response missing field `{key}`"),
                at: 0,
            })
        };
        Ok(ServeResponse {
            problem: field("problem")?
                .as_str()
                .ok_or_else(|| json::ParseError {
                    message: "malformed response field `problem`".into(),
                    at: 0,
                })?
                .to_string(),
            workload: WorkloadSpec::from_value(field("workload")?)?,
            config: RunConfig::from_value(field("config")?)?,
            summary: OutputSummary::from_value(field("summary")?)?,
            report: RunReport::from_value(field("report")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecMode;

    #[test]
    fn request_round_trips() {
        let mut req = ServeRequest::new("delaunay");
        req.workload = WorkloadSpec::new(500, 7).shape("uniform-disk");
        req.config = RunConfig::new().seed(3).threads(4);
        let back = ServeRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_defaults_match_the_cli_rules() {
        let req = ServeRequest::from_json("{\"problem\":\"sort\"}").unwrap();
        assert_eq!(req.workload, WorkloadSpec::new(DEFAULT_N, 0));
        assert_eq!(req.config, RunConfig::default());

        // An explicit n: 0 must survive to the constructor.
        let req = ServeRequest::from_json("{\"problem\":\"sort\",\"workload\":{\"n\":0}}").unwrap();
        assert_eq!(req.workload.n, 0);

        // A workload without n gets the default size but keeps its seed.
        let req =
            ServeRequest::from_json("{\"problem\":\"sort\",\"workload\":{\"seed\":9}}").unwrap();
        assert_eq!(req.workload.n, DEFAULT_N);
        assert_eq!(req.workload.seed, 9);
    }

    #[test]
    fn non_finite_param_is_a_structured_bad_workload() {
        for body in [
            "{\"problem\":\"le-lists\",\"workload\":{\"n\":64,\"param\":1e999}}",
            "{\"problem\":\"le-lists\",\"workload\":{\"n\":64,\"param\":-1e999}}",
        ] {
            let err = ServeRequest::from_json(body).unwrap_err();
            assert_eq!(err.kind, ServeErrorKind::BadWorkload, "{body}");
            assert_eq!(err.http_status(), 400, "{body}");
            assert!(
                err.message.contains("not finite"),
                "{body}: {}",
                err.message
            );
            // The error envelope itself must serialize (a non-finite
            // param echoed back would trip the writer's finiteness
            // assertion).
            assert!(err.to_json().contains("bad-workload"));
        }
    }

    #[test]
    fn request_rejections_are_structured() {
        for bad in [
            "not json",
            "{}",
            "{\"problem\":7}",
            "{\"problem\":\"sort\",\"workload\":{\"n\":-1}}",
            "{\"problem\":\"sort\",\"config\":{\"mode\":\"sideways\"}}",
            &format!(
                "{{\"problem\":\"sort\",\"workload\":{{\"seed\":{}}}}}",
                1u64 << 53
            ),
            &format!(
                "{{\"problem\":\"sort\",\"config\":{{\"seed\":{}}}}}",
                1u64 << 53
            ),
        ] {
            let err = ServeRequest::from_json(bad).unwrap_err();
            assert_eq!(err.kind, ServeErrorKind::BadRequest, "input: {bad}");
        }
    }

    #[test]
    fn error_round_trips_and_maps_statuses() {
        for kind in ServeErrorKind::ALL {
            for retryable in [kind.default_retryable(), !kind.default_retryable()] {
                let e = ServeError::new(kind, "something").retryable(retryable);
                let back = ServeError::from_json(&e.to_json()).unwrap();
                assert_eq!(back, e);
                assert_eq!(back.retryable, retryable);
            }
            assert!((400..=599).contains(&kind.http_status()), "{kind:?}");
        }
        assert_eq!(ServeError::bad_request("x").http_status(), 400);
        assert!(ServeError::from_json("{\"error\":{}}").is_err());
        assert!(ServeError::from_json("{}").is_err());
    }

    #[test]
    fn retryable_defaults_by_kind_and_is_additive_on_parse() {
        // Shed-before-running kinds default retryable; the rest do not.
        assert!(ServeError::new(ServeErrorKind::Overloaded, "x").retryable);
        assert!(ServeError::new(ServeErrorKind::DeadlineExceeded, "x").retryable);
        for kind in ServeErrorKind::ALL {
            if kind != ServeErrorKind::Overloaded && kind != ServeErrorKind::DeadlineExceeded {
                assert!(!ServeError::new(kind, "x").retryable, "{kind:?}");
            }
        }
        // A pre-field envelope (no `retryable` member) parses to the kind
        // default — the field is additive, old producers keep working.
        let old = "{\"error\":{\"kind\":\"overloaded\",\"message\":\"m\"}}";
        assert!(ServeError::from_json(old).unwrap().retryable);
        let old = "{\"error\":{\"kind\":\"bad-request\",\"message\":\"m\"}}";
        assert!(!ServeError::from_json(old).unwrap().retryable);
        // Present but malformed is rejected.
        let bad = "{\"error\":{\"kind\":\"overloaded\",\"message\":\"m\",\"retryable\":1}}";
        assert!(ServeError::from_json(bad).is_err());
    }

    #[test]
    fn registry_errors_map_to_kinds() {
        let unknown: ServeError = RegistryError::UnknownProblem {
            name: "nope".into(),
            known: vec!["sort".into()],
        }
        .into();
        assert_eq!(unknown.kind, ServeErrorKind::UnknownProblem);
        assert_eq!(unknown.http_status(), 404);
        let badwl: ServeError = RegistryError::BadWorkload {
            name: "sort".into(),
            message: "n must be positive".into(),
        }
        .into();
        assert_eq!(badwl.kind, ServeErrorKind::BadWorkload);
        assert_eq!(badwl.http_status(), 400);
    }

    #[test]
    fn response_round_trips() {
        let mut summary = OutputSummary::new();
        summary.answer_num("x", 2.5).metric_num("work", 10.0);
        let mut report = RunReport::new("demo");
        report.mode = ExecMode::Parallel;
        report.threads = 2;
        report.items = 5;
        report.record_round(5, 9);
        report.depth = 1;
        let resp = ServeResponse {
            problem: "demo".into(),
            workload: WorkloadSpec::new(5, 1),
            config: RunConfig::new().threads(2),
            summary,
            report,
        };
        let back = ServeResponse::from_json(&resp.to_json()).unwrap();
        assert_eq!(back, resp);
        // The single `error` key distinguishes error bodies from
        // responses.
        assert!(ServeResponse::from_json(&ServeError::bad_request("x").to_json()).is_err());
    }
}
