//! # The unified execution engine
//!
//! One API over the paper's three executor schedules, all eight
//! algorithms, and a single execution record:
//!
//! * [`RunConfig`] — seed, [`ExecMode`], worker threads, instrumentation;
//! * [`Runner`] — executes any [`Executable`] under a config inside a
//!   scoped thread pool;
//! * [`Type1Adapter`] / [`Type2Adapter`] / [`Type3Adapter`] — make every
//!   algorithm written against the `Type1Algorithm` / `Type2Algorithm` /
//!   `Type3Algorithm` traits executable through `Runner::run`;
//! * [`RunReport`] — the unified per-run record (rounds, work, measured
//!   dependence depth, special-iteration trace, phase wall times, JSON);
//! * [`Problem`] — the uniform problem-level trait the algorithm crates
//!   implement (`SortProblem`, `DelaunayProblem`, `LpProblem`,
//!   `ClosestPairProblem`, `EnclosingProblem`, `LeListsProblem`,
//!   `SccProblem`, ...), each solving to `(Output, RunReport)`;
//! * [`registry`] — the object-safe layer over all of it: a [`Registry`]
//!   of named [`ErasedProblem`] constructors taking a [`WorkloadSpec`]
//!   and solving to `(OutputSummary, RunReport)` — what the `ri` CLI
//!   driver and any serving layer program against;
//! * [`scratch`] — the round-scoped scratch workspace
//!   ([`RoundScratch`]): per-thread, capacity-preserving buffer reuse so
//!   steady-state executor rounds allocate nothing, with reuse counters
//!   stamped on every report;
//! * [`grain`] — adaptive grain control: the per-round sequential cutoff
//!   (derived from the installed pool width) under which a round runs
//!   inline on the caller with zero scheduler involvement;
//! * [`envelope`] — the transport-agnostic serving envelope:
//!   [`ServeRequest`] / [`ServeResponse`] / [`ServeError`] with JSON
//!   round-trips, shared by the `ri` CLI and the `ri-serve` HTTP server
//!   so both speak exactly one parse path;
//! * [`faults`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   mapping request indices to injectable faults (latency, stalls,
//!   mid-response drops, spurious 503s, crash-after-N) so chaos runs
//!   against the serving tier are bit-reproducible, plus the
//!   deadline-budget and retry-hint header names shared by serve,
//!   router, and loadgen;
//! * [`session`] — the streaming-session envelope
//!   ([`StreamSpec`] / [`BatchRequest`] / [`BatchDelta`]): open a
//!   session over a fixed instance and reveal it batch by batch through
//!   the registry's object-safe [`ErasedIncremental`] trait, each batch
//!   returning a deterministic delta + per-batch trace;
//! * [`witness`] — deterministic witness records
//!   ([`WitnessRecord`] / [`WitnessLog`] / [`witness::replay`]): persist
//!   any served response as `{request, seed, shard, answer, trace}` and
//!   re-execute it bit-identically anywhere — the cross-shard
//!   answer-equality gate the `ri-router` front tier and the
//!   `ri witness replay` CLI mode are built on.
//!
//! ```
//! use ri_core::engine::{ExecMode, RunConfig, Runner, Type1Adapter};
//! use ri_core::Type1Algorithm;
//!
//! // A 4-iteration chain 0 -> 1 -> 2 plus an independent iteration 3.
//! struct Chain {
//!     done: Vec<std::sync::atomic::AtomicBool>,
//! }
//! impl Type1Algorithm for Chain {
//!     fn len(&self) -> usize {
//!         self.done.len()
//!     }
//!     fn ready(&self, k: usize) -> bool {
//!         k == 0 || k == 3 || self.done[k - 1].load(std::sync::atomic::Ordering::Relaxed)
//!     }
//!     fn run(&mut self, k: usize) {
//!         self.done[k].store(true, std::sync::atomic::Ordering::Relaxed);
//!     }
//! }
//!
//! let mut algo = Chain { done: (0..4).map(|_| Default::default()).collect() };
//! let report = Runner::new(RunConfig::new()).run(&mut Type1Adapter(&mut algo));
//! assert_eq!(report.depth, 3); // the dependence depth of the chain
//! assert_eq!(report.mode, ExecMode::Parallel);
//! assert_eq!(report.total_items(), 4);
//! ```

pub mod envelope;
pub mod faults;
pub mod grain;
pub mod json;
pub mod registry;
mod report;
mod runner;
pub mod scratch;
pub mod session;
pub mod witness;

pub use envelope::{ServeError, ServeErrorKind, ServeRequest, ServeResponse};
pub use faults::{FaultKind, FaultPlan};
pub use registry::{
    ErasedIncremental, ErasedProblem, OutputSummary, Registry, RegistryError, WorkloadSpec,
};
pub use report::{Phase, RunReport};
pub use runner::{
    execute_type1, execute_type2, execute_type3, ExecMode, Executable, ParseExecModeError, Problem,
    RunConfig, Runner, Type1Adapter, Type2Adapter, Type3Adapter,
};
pub use scratch::RoundScratch;
pub use session::{BatchDelta, BatchRequest, FeedState, StreamSpec};
pub use witness::{LogEntry, RoundTrace, StreamBatchRecord, WitnessLog, WitnessRecord};
