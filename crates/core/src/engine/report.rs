//! The unified execution record every engine run produces.
//!
//! [`RunReport`] subsumes the two incompatible stats types the pre-engine
//! executors used to return — [`RoundLog`] (Types 1 and 3) and a
//! Type-2-specific specials record — so the bench harness, the
//! integration tests, and downstream tooling read *one* shape for all
//! eight algorithms: per-round items/work, the special-iteration trace,
//! the measured dependence depth, per-phase wall times, and a JSON form.

use std::time::Instant;

use ri_pram::RoundLog;

use super::json::{self, Value};
use super::runner::ExecMode;

/// One named, timed phase of a run (e.g. `"build"`, `"solve"`).
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase name.
    pub name: String,
    /// Wall time in seconds.
    pub seconds: f64,
}

/// The unified execution record of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Which algorithm ran (e.g. `"bst-sort"`, `"delaunay"`).
    pub algorithm: String,
    /// Execution mode of the run.
    pub mode: ExecMode,
    /// Worker threads the run was configured with.
    pub threads: usize,
    /// Number of iterations (input items) processed.
    pub items: usize,
    /// Per-round `(items, work)` log. For parallel runs one entry per
    /// executor round; sequential runs record a single summary entry.
    pub rounds: RoundLog,
    /// Measured iteration dependence depth: executor rounds (Type 1),
    /// total sub-rounds (Type 2 parallel), doubling rounds (Type 3) — or
    /// `items` for sequential runs, whose dependence chain is the input
    /// order itself.
    pub depth: usize,
    /// Indices that executed as special iterations, in execution order
    /// (Type 2 only; empty otherwise).
    pub specials: Vec<usize>,
    /// Sub-rounds per prefix (Type 2 parallel only; empty otherwise).
    pub sub_rounds: Vec<usize>,
    /// The algorithm's scalar work measure: specialness checks for Type 2
    /// runs; the problem's own work counter (comparisons, InCircle tests,
    /// visits + relaxations, ...) for problem-level runs.
    pub checks: u64,
    /// Named, timed phases (empty when instrumentation is off).
    pub phases: Vec<Phase>,
    /// Total wall time of the run in seconds (0 when instrumentation is
    /// off).
    pub wall_seconds: f64,
    /// Scratch-arena takes served from the pool during the run (buffer
    /// reuse; measured on the run's calling thread).
    pub scratch_hits: u64,
    /// Scratch-arena takes that had to allocate (first run on a thread
    /// warms the pool; steady state should be hit-dominated).
    pub scratch_misses: u64,
    /// Multi-member parallel regions the calling thread started. 0 when
    /// every round fell under the engine's sequential grain cutoff (and
    /// always 0 for sequential / 1-thread runs).
    pub regions: u64,
    /// Scoped helper threads the calling thread spawned (crew members,
    /// join branches). Like `regions`, 0 for fully inline runs.
    pub helper_spawns: u64,
    /// Pops the relaxed scheduler served out of priority order (an
    /// inversion is a pop whose priority is below the running maximum of
    /// priorities already popped). 0 outside [`ExecMode::Relaxed`] runs
    /// and for `relaxed:1`, which is exact.
    pub rank_inversions: u64,
    /// Iterations a relaxed run evaluated but could not commit (conflict
    /// re-enqueues, checks past the committed special) — the measured
    /// O(k·poly-log) overhead. 0 outside [`ExecMode::Relaxed`] runs.
    pub wasted_retries: u64,
    /// Set when a relaxed-mode request fell back to the exact parallel
    /// path because the problem has no native relaxed loop; carries the
    /// reason. `None` for native relaxed runs and non-relaxed modes.
    pub relaxed_fallback: Option<String>,
}

impl RunReport {
    /// A fresh report for `algorithm` (counters zeroed; mode/threads are
    /// filled in by the [`Runner`](super::Runner)).
    pub fn new(algorithm: impl Into<String>) -> Self {
        RunReport {
            algorithm: algorithm.into(),
            mode: ExecMode::Parallel,
            threads: 1,
            items: 0,
            rounds: RoundLog::new(),
            depth: 0,
            specials: Vec::new(),
            sub_rounds: Vec::new(),
            checks: 0,
            phases: Vec::new(),
            wall_seconds: 0.0,
            scratch_hits: 0,
            scratch_misses: 0,
            regions: 0,
            helper_spawns: 0,
            rank_inversions: 0,
            wasted_retries: 0,
            relaxed_fallback: None,
        }
    }

    /// Record one completed executor round.
    pub fn record_round(&mut self, items: usize, work: u64) {
        self.rounds.record(items, work);
    }

    /// Total work across rounds.
    pub fn total_work(&self) -> u64 {
        self.rounds.total_work()
    }

    /// Total items across rounds.
    pub fn total_items(&self) -> usize {
        self.rounds.total_items()
    }

    /// Sum of per-prefix sub-round counts (Type 2 parallel depth measure).
    pub fn total_sub_rounds(&self) -> usize {
        self.sub_rounds.iter().sum()
    }

    /// Time `f` as a named phase, recording it when `instrument` is set.
    pub fn phase<R>(&mut self, name: &str, instrument: bool, f: impl FnOnce(&mut Self) -> R) -> R {
        if !instrument {
            return f(self);
        }
        let t0 = Instant::now();
        let out = f(self);
        self.phases.push(Phase {
            name: name.to_string(),
            seconds: t0.elapsed().as_secs_f64(),
        });
        out
    }

    /// Fold another report into this one (for runs assembled from several
    /// stages): round entries append in order, traces concatenate,
    /// counters add, and depth accumulates (stages execute back-to-back,
    /// so their dependence chains compose).
    pub fn merge(&mut self, other: &RunReport) {
        self.items += other.items;
        for &(items, work) in other.rounds.entries() {
            self.rounds.record(items, work);
        }
        self.depth += other.depth;
        self.specials.extend_from_slice(&other.specials);
        self.sub_rounds.extend_from_slice(&other.sub_rounds);
        self.checks += other.checks;
        self.phases.extend_from_slice(&other.phases);
        self.wall_seconds += other.wall_seconds;
        self.scratch_hits += other.scratch_hits;
        self.scratch_misses += other.scratch_misses;
        self.regions += other.regions;
        self.helper_spawns += other.helper_spawns;
        self.rank_inversions += other.rank_inversions;
        self.wasted_retries += other.wasted_retries;
        if self.relaxed_fallback.is_none() {
            self.relaxed_fallback = other.relaxed_fallback.clone();
        }
    }

    /// Serialize to a single-line JSON object.
    pub fn to_json(&self) -> String {
        self.to_value().write()
    }

    /// The report as a JSON [`Value`] (for embedding in larger documents
    /// such as the serve envelope's response).
    pub fn to_value(&self) -> Value {
        let rounds = Value::Arr(
            self.rounds
                .entries()
                .iter()
                .map(|&(items, work)| {
                    Value::Arr(vec![Value::Num(items as f64), Value::Num(work as f64)])
                })
                .collect(),
        );
        let specials = Value::Arr(
            self.specials
                .iter()
                .map(|&s| Value::Num(s as f64))
                .collect(),
        );
        let sub_rounds = Value::Arr(
            self.sub_rounds
                .iter()
                .map(|&s| Value::Num(s as f64))
                .collect(),
        );
        let phases = Value::Arr(
            self.phases
                .iter()
                .map(|p| Value::Arr(vec![Value::Str(p.name.clone()), Value::Num(p.seconds)]))
                .collect(),
        );
        let mut fields = vec![
            ("algorithm".into(), Value::Str(self.algorithm.clone())),
            ("mode".into(), Value::Str(self.mode.as_str().into())),
            ("threads".into(), Value::Num(self.threads as f64)),
            ("items".into(), Value::Num(self.items as f64)),
            ("rounds".into(), rounds),
            ("depth".into(), Value::Num(self.depth as f64)),
            ("specials".into(), specials),
            ("sub_rounds".into(), sub_rounds),
            ("checks".into(), Value::Num(self.checks as f64)),
            ("phases".into(), phases),
            ("wall_seconds".into(), Value::Num(self.wall_seconds)),
            ("scratch_hits".into(), Value::Num(self.scratch_hits as f64)),
            (
                "scratch_misses".into(),
                Value::Num(self.scratch_misses as f64),
            ),
            ("regions".into(), Value::Num(self.regions as f64)),
            (
                "helper_spawns".into(),
                Value::Num(self.helper_spawns as f64),
            ),
            (
                "rank_inversions".into(),
                Value::Num(self.rank_inversions as f64),
            ),
            (
                "wasted_retries".into(),
                Value::Num(self.wasted_retries as f64),
            ),
        ];
        // Stamped only when a relaxed request ran on the exact path, so
        // the common case keeps the pre-PR-8 shape byte for byte.
        if let Some(reason) = &self.relaxed_fallback {
            fields.push(("relaxed_fallback".into(), Value::Str(reason.clone())));
        }
        Value::Obj(fields)
    }

    /// Parse a report back from [`RunReport::to_json`] output.
    ///
    /// Counters above 2⁵³ would lose precision through the JSON number
    /// representation; no realistic run reaches that.
    pub fn from_json(text: &str) -> Result<RunReport, json::ParseError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Parse a report from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<RunReport, json::ParseError> {
        let field = |key: &str| {
            v.get(key).ok_or_else(|| json::ParseError {
                message: format!("missing field `{key}`"),
                at: 0,
            })
        };
        let bad = |key: &str| json::ParseError {
            message: format!("malformed field `{key}`"),
            at: 0,
        };

        let mut report = RunReport::new(
            field("algorithm")?
                .as_str()
                .ok_or_else(|| bad("algorithm"))?,
        );
        report.mode = field("mode")?
            .as_str()
            .and_then(|s| s.parse::<ExecMode>().ok())
            .ok_or_else(|| bad("mode"))?;
        report.threads = field("threads")?.as_usize().ok_or_else(|| bad("threads"))?;
        report.items = field("items")?.as_usize().ok_or_else(|| bad("items"))?;
        for entry in field("rounds")?.as_arr().ok_or_else(|| bad("rounds"))? {
            let pair = entry
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| bad("rounds"))?;
            report.rounds.record(
                pair[0].as_usize().ok_or_else(|| bad("rounds"))?,
                pair[1].as_u64().ok_or_else(|| bad("rounds"))?,
            );
        }
        report.depth = field("depth")?.as_usize().ok_or_else(|| bad("depth"))?;
        for s in field("specials")?.as_arr().ok_or_else(|| bad("specials"))? {
            report
                .specials
                .push(s.as_usize().ok_or_else(|| bad("specials"))?);
        }
        for s in field("sub_rounds")?
            .as_arr()
            .ok_or_else(|| bad("sub_rounds"))?
        {
            report
                .sub_rounds
                .push(s.as_usize().ok_or_else(|| bad("sub_rounds"))?);
        }
        report.checks = field("checks")?.as_u64().ok_or_else(|| bad("checks"))?;
        for p in field("phases")?.as_arr().ok_or_else(|| bad("phases"))? {
            let pair = p
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| bad("phases"))?;
            report.phases.push(Phase {
                name: pair[0].as_str().ok_or_else(|| bad("phases"))?.to_string(),
                seconds: pair[1].as_f64().ok_or_else(|| bad("phases"))?,
            });
        }
        report.wall_seconds = field("wall_seconds")?
            .as_f64()
            .ok_or_else(|| bad("wall_seconds"))?;
        // The allocation/region counters were added after the first JSON
        // shape shipped: absent fields read as 0 so recorded reports from
        // older runs still parse; present fields must be well-formed.
        let counter = |key: &str| match v.get(key) {
            None => Ok(0),
            Some(x) => x.as_u64().ok_or_else(|| bad(key)),
        };
        report.scratch_hits = counter("scratch_hits")?;
        report.scratch_misses = counter("scratch_misses")?;
        report.regions = counter("regions")?;
        report.helper_spawns = counter("helper_spawns")?;
        report.rank_inversions = counter("rank_inversions")?;
        report.wasted_retries = counter("wasted_retries")?;
        report.relaxed_fallback = match v.get("relaxed_fallback") {
            None | Some(Value::Null) => None,
            Some(r) => Some(
                r.as_str()
                    .ok_or_else(|| bad("relaxed_fallback"))?
                    .to_string(),
            ),
        };
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport::new("demo");
        r.mode = ExecMode::Parallel;
        r.threads = 4;
        r.items = 35;
        r.record_round(10, 100);
        r.record_round(20, 50);
        r.record_round(5, 5);
        r.depth = 3;
        r.specials = vec![0, 7, 19];
        r.sub_rounds = vec![1, 2, 2];
        r.checks = 155;
        r.phases.push(Phase {
            name: "solve".into(),
            seconds: 0.125,
        });
        r.wall_seconds = 0.25;
        r.scratch_hits = 6;
        r.scratch_misses = 2;
        r.regions = 3;
        r.helper_spawns = 9;
        r.rank_inversions = 11;
        r.wasted_retries = 4;
        r
    }

    #[test]
    fn aggregation_over_rounds() {
        let r = sample();
        assert_eq!(r.total_items(), 35);
        assert_eq!(r.total_work(), 155);
        assert_eq!(r.rounds.rounds(), 3);
        assert_eq!(r.total_sub_rounds(), 5);
    }

    #[test]
    fn merge_appends_rounds_and_accumulates_depth() {
        let mut a = sample();
        let mut b = RunReport::new("demo");
        b.items = 7;
        b.record_round(7, 70);
        b.depth = 2;
        b.specials = vec![3];
        b.checks = 70;
        b.wall_seconds = 0.5;
        a.merge(&b);
        assert_eq!(a.items, 42);
        assert_eq!(a.rounds.rounds(), 4);
        assert_eq!(a.total_work(), 225);
        assert_eq!(a.depth, 5);
        assert_eq!(a.specials, vec![0, 7, 19, 3]);
        assert_eq!(a.checks, 225);
        assert!((a.wall_seconds - 0.75).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let r = sample();
        let text = r.to_json();
        let parsed = RunReport::from_json(&text).expect("parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn relaxed_mode_and_fallback_round_trip() {
        let mut r = sample();
        r.mode = ExecMode::Relaxed { k: 8 };
        r.relaxed_fallback = Some("no native relaxed loop".into());
        let text = r.to_json();
        assert!(text.contains("\"relaxed:8\""));
        assert!(text.contains("relaxed_fallback"));
        assert_eq!(RunReport::from_json(&text).unwrap(), r);
        // Without a fallback the key is absent, and parses back as None.
        r.relaxed_fallback = None;
        let text = r.to_json();
        assert!(!text.contains("relaxed_fallback"));
        assert_eq!(RunReport::from_json(&text).unwrap(), r);
    }

    #[test]
    fn json_round_trip_of_empty_report() {
        let r = RunReport::new("empty");
        assert_eq!(RunReport::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("not json").is_err());
        let mut ok = sample().to_json();
        ok = ok.replace("\"parallel\"", "\"sideways\"");
        assert!(RunReport::from_json(&ok).is_err());
    }

    #[test]
    fn counters_are_optional_on_parse_but_validated_when_present() {
        // A pre-counter report (the shape older runs recorded) parses
        // with zeroed counters...
        let old = sample().to_json();
        let old = old.split(",\"scratch_hits\"").next().unwrap().to_string() + "}";
        let parsed = RunReport::from_json(&old).expect("old shape parses");
        assert_eq!(parsed.scratch_hits, 0);
        assert_eq!(parsed.regions, 0);
        // ...but a malformed present counter is rejected.
        let bad = sample()
            .to_json()
            .replace("\"regions\":3", "\"regions\":\"many\"");
        assert!(RunReport::from_json(&bad).is_err());
    }

    #[test]
    fn phase_timer_records_when_instrumented() {
        let mut r = RunReport::new("p");
        let x = r.phase("stage", true, |_| 41 + 1);
        assert_eq!(x, 42);
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].name, "stage");
        let y = r.phase("quiet", false, |_| 1);
        assert_eq!(y, 1);
        assert_eq!(r.phases.len(), 1, "uninstrumented phases are not recorded");
    }
}
