//! The Type 1 round scheduler (§2.1 of the paper).
//!
//! *"The Type 1 algorithms that we describe can be parallelized by running a
//! sequence of rounds. Each round checks all remaining iterations to see if
//! their dependences have been satisfied and runs the iterations if so."*
//!
//! The executor itself lives in [`crate::engine`]
//! ([`execute_type1`](crate::engine::execute_type1)); this module defines
//! the [`Type1Algorithm`] contract. The generic executor is the reference
//! scheduler: it measures the iteration dependence depth of *any* plugged
//! incremental algorithm (the number of rounds equals `D(G)` when `ready`
//! faithfully encodes the dependences). The production algorithms
//! (`ri-sort`, `ri-delaunay`) ship specialised lock-free versions of the
//! same schedule; their tests check equivalence against this one.

/// An incremental algorithm exposing its per-iteration readiness.
///
/// Contract:
/// * `ready(k)` may be called concurrently (`&self`) and must be *monotone*:
///   once true it stays true until `run(k)` happens.
/// * `run(k)` is called exactly once, only when `ready(k)` held at the start
///   of the round; iterations run within a round must not depend on each
///   other (that is exactly the iteration-dependence-graph contract of
///   Definition 1).
/// * `begin_round(r)` is called once at the start of executor round `r`
///   (0-based), before that round's `ready` checks — instrumentation hook
///   for algorithms that track *when* each iteration ran.
pub trait Type1Algorithm: Sync {
    /// Number of iterations.
    fn len(&self) -> usize;

    /// Convenience emptiness test.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Are all of iteration `k`'s dependences satisfied?
    fn ready(&self, k: usize) -> bool;

    /// Round-start hook (see trait docs). Default: no-op.
    fn begin_round(&mut self, round: usize) {
        let _ = round;
    }

    /// Execute iteration `k`.
    fn run(&mut self, k: usize);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{execute_type1, RunConfig, Runner, Type1Adapter};

    /// Toy Type 1 algorithm: iteration k is ready once all of its listed
    /// predecessors ran. Records the round in which each iteration ran
    /// (via the executor's `begin_round` hook).
    struct Toy {
        preds: Vec<Vec<usize>>,
        done: Vec<std::sync::atomic::AtomicBool>,
        ran_round: Vec<usize>,
        current_round: usize,
    }

    impl Toy {
        fn new(preds: Vec<Vec<usize>>) -> Self {
            let n = preds.len();
            Toy {
                preds,
                done: (0..n).map(|_| Default::default()).collect(),
                ran_round: vec![usize::MAX; n],
                current_round: usize::MAX,
            }
        }
    }

    impl Type1Algorithm for Toy {
        fn len(&self) -> usize {
            self.preds.len()
        }
        fn ready(&self, k: usize) -> bool {
            self.preds[k]
                .iter()
                .all(|&p| self.done[p].load(std::sync::atomic::Ordering::Relaxed))
        }
        fn begin_round(&mut self, round: usize) {
            self.current_round = round;
        }
        fn run(&mut self, k: usize) {
            self.ran_round[k] = self.current_round;
            self.done[k].store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn run_parallel(toy: &mut Toy) -> crate::engine::RunReport {
        Runner::new(RunConfig::new()).run(&mut Type1Adapter(toy))
    }

    #[test]
    fn rounds_equal_dag_depth() {
        // Chain 0 -> 1 -> 2 plus independent 3: depth 3.
        let mut toy = Toy::new(vec![vec![], vec![0], vec![1], vec![]]);
        let report = run_parallel(&mut toy);
        assert_eq!(report.rounds.rounds(), 3);
        assert_eq!(report.depth, 3);
        assert_eq!(report.total_items(), 4);
        // Per-round placement: each iteration ran in the round equal to its
        // depth in the DAG (0 and 3 immediately; 1 and 2 one level apart).
        assert_eq!(toy.ran_round, vec![0, 1, 2, 0]);
    }

    #[test]
    fn diamond_runs_in_three_rounds() {
        let mut toy = Toy::new(vec![vec![], vec![0], vec![0], vec![1, 2]]);
        let report = run_parallel(&mut toy);
        assert_eq!(report.rounds.rounds(), 3);
        assert_eq!(report.rounds.entries()[0].0, 1);
        assert_eq!(report.rounds.entries()[1].0, 2);
        assert_eq!(report.rounds.entries()[2].0, 1);
        assert_eq!(toy.ran_round, vec![0, 1, 1, 2]);
    }

    #[test]
    fn independent_iterations_single_round() {
        let mut toy = Toy::new(vec![vec![]; 100]);
        let report = run_parallel(&mut toy);
        assert_eq!(report.rounds.rounds(), 1);
        assert!(toy.ran_round.iter().all(|&r| r == 0));
    }

    #[test]
    fn sequential_mode_runs_in_insertion_order() {
        let mut toy = Toy::new(vec![vec![], vec![0], vec![1], vec![]]);
        let report = execute_type1(&mut toy, &RunConfig::new().sequential());
        assert_eq!(report.depth, 4, "sequential depth is the iteration count");
        assert_eq!(report.total_items(), 4);
        // In sequential mode `begin_round(k)` fires per iteration.
        assert_eq!(toy.ran_round, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn cycle_detected_as_stall() {
        // 0 depends on 1 via a fake "never ready" encoding.
        struct Never;
        impl Type1Algorithm for Never {
            fn len(&self) -> usize {
                1
            }
            fn ready(&self, _k: usize) -> bool {
                false
            }
            fn run(&mut self, _k: usize) {}
        }
        run_parallel_never(&mut Never);
        fn run_parallel_never(algo: &mut Never) {
            Runner::new(RunConfig::new()).run(&mut Type1Adapter(algo));
        }
    }

    #[test]
    fn empty_input() {
        let mut toy = Toy::new(vec![]);
        let report = run_parallel(&mut toy);
        assert_eq!(report.rounds.rounds(), 0);
        assert_eq!(report.depth, 0);
    }
}
