//! The Type 1 round scheduler (§2.1 of the paper).
//!
//! *"The Type 1 algorithms that we describe can be parallelized by running a
//! sequence of rounds. Each round checks all remaining iterations to see if
//! their dependences have been satisfied and runs the iterations if so."*
//!
//! This generic executor is the reference scheduler: it measures the
//! iteration dependence depth of *any* plugged incremental algorithm (the
//! number of rounds equals `D(G)` when `ready` faithfully encodes the
//! dependences). The production algorithms (`ri-sort`, `ri-delaunay`) ship
//! specialised lock-free versions of the same schedule; their tests check
//! equivalence against this one.

use rayon::prelude::*;

use ri_pram::RoundLog;

/// An incremental algorithm exposing its per-iteration readiness.
///
/// Contract:
/// * `ready(k)` may be called concurrently (`&self`) and must be *monotone*:
///   once true it stays true until `run(k)` happens.
/// * `run(k)` is called exactly once, only when `ready(k)` held at the start
///   of the round; iterations run within a round must not depend on each
///   other (that is exactly the iteration-dependence-graph contract of
///   Definition 1).
pub trait Type1Algorithm: Sync {
    /// Number of iterations.
    fn len(&self) -> usize;

    /// Convenience emptiness test.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Are all of iteration `k`'s dependences satisfied?
    fn ready(&self, k: usize) -> bool;

    /// Execute iteration `k`.
    fn run(&mut self, k: usize);
}

/// Run a Type 1 algorithm in rounds; returns the per-round log.
///
/// The returned [`RoundLog::rounds`] equals the iteration dependence depth
/// of the computation (each round peels one level of the dependence DAG).
/// Panics if no progress is possible (a `ready` that never enables some
/// iteration — i.e. an incorrectly encoded dependence graph).
pub fn run_type1<A: Type1Algorithm>(algo: &mut A) -> RoundLog {
    let n = algo.len();
    let mut log = RoundLog::new();
    let mut remaining: Vec<usize> = (0..n).collect();
    while !remaining.is_empty() {
        // Check phase (parallel, read-only), then run phase (sequential
        // within the round: the iterations are mutually independent, so any
        // execution order gives the sequential algorithm's result).
        let ready_flags: Vec<bool> = remaining.par_iter().map(|&k| algo.ready(k)).collect();
        let runnable: Vec<usize> = remaining
            .iter()
            .zip(&ready_flags)
            .filter(|(_, &r)| r)
            .map(|(&k, _)| k)
            .collect();
        assert!(
            !runnable.is_empty(),
            "Type 1 executor stalled with {} iterations remaining",
            remaining.len()
        );
        for &k in &runnable {
            algo.run(k);
        }
        remaining = remaining
            .iter()
            .zip(&ready_flags)
            .filter(|(_, &r)| !r)
            .map(|(&k, _)| k)
            .collect();
        log.record(runnable.len(), runnable.len() as u64);
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy Type 1 algorithm: iteration k is ready once all of its listed
    /// predecessors ran. Records the round in which each iteration ran.
    struct Toy {
        preds: Vec<Vec<usize>>,
        done: Vec<std::sync::atomic::AtomicBool>,
        ran_round: Vec<usize>,
        current_round: usize,
    }

    impl Toy {
        fn new(preds: Vec<Vec<usize>>) -> Self {
            let n = preds.len();
            Toy {
                preds,
                done: (0..n).map(|_| Default::default()).collect(),
                ran_round: vec![usize::MAX; n],
                current_round: 0,
            }
        }
    }

    impl Type1Algorithm for Toy {
        fn len(&self) -> usize {
            self.preds.len()
        }
        fn ready(&self, k: usize) -> bool {
            self.preds[k]
                .iter()
                .all(|&p| self.done[p].load(std::sync::atomic::Ordering::Relaxed))
        }
        fn run(&mut self, k: usize) {
            self.ran_round[k] = self.current_round;
            self.done[k].store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn rounds_equal_dag_depth() {
        // Chain 0 -> 1 -> 2 plus independent 3: depth 3.
        let mut toy = Toy::new(vec![vec![], vec![0], vec![1], vec![]]);
        // The executor runs whole levels; patch current_round between rounds
        // via a wrapper loop in run(): simplest is to bump in ready-phase —
        // here we just check the round count.
        let log = run_type1(&mut toy);
        assert_eq!(log.rounds(), 3);
        assert_eq!(log.total_items(), 4);
    }

    #[test]
    fn diamond_runs_in_three_rounds() {
        let mut toy = Toy::new(vec![vec![], vec![0], vec![0], vec![1, 2]]);
        let log = run_type1(&mut toy);
        assert_eq!(log.rounds(), 3);
        assert_eq!(log.entries()[0].0, 1);
        assert_eq!(log.entries()[1].0, 2);
        assert_eq!(log.entries()[2].0, 1);
    }

    #[test]
    fn independent_iterations_single_round() {
        let mut toy = Toy::new(vec![vec![]; 100]);
        let log = run_type1(&mut toy);
        assert_eq!(log.rounds(), 1);
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn cycle_detected_as_stall() {
        // 0 depends on 1 via a fake "never ready" encoding.
        struct Never;
        impl Type1Algorithm for Never {
            fn len(&self) -> usize {
                1
            }
            fn ready(&self, _k: usize) -> bool {
                false
            }
            fn run(&mut self, _k: usize) {}
        }
        run_type1(&mut Never);
    }

    #[test]
    fn empty_input() {
        let mut toy = Toy::new(vec![]);
        let log = run_type1(&mut toy);
        assert_eq!(log.rounds(), 0);
    }
}
