//! # `ri-core` — the framework of the paper
//!
//! Section 2 of *Parallelism in Randomized Incremental Algorithms* (Blelloch,
//! Gu, Shun, Sun; SPAA 2016) classifies randomized incremental algorithms by
//! the structure of their **iteration dependence graphs** and gives a
//! general parallel execution scheme per class. This crate implements that
//! framework:
//!
//! * [`depgraph`] — explicit iteration dependence graphs (Definition 1) and
//!   their depth `D(G)`, the quantity Theorem 2.1 bounds.
//! * [`type1`] — the round scheduler for **Type 1** algorithms (k-bounded
//!   dependences; §2.1): each round runs every iteration whose dependences
//!   are satisfied. The number of rounds equals the dependence depth.
//! * [`type2`] — **Algorithm 1** of the paper for **Type 2** algorithms
//!   (special/regular iterations; §2.2): geometrically growing prefixes,
//!   each processed in sub-rounds that locate and execute the earliest
//!   special iteration.
//! * [`type3`] — **Algorithm 2** for **Type 3** algorithms (separating
//!   dependences; §2.3): doubling rounds that run a whole prefix against
//!   the previous round's state and then combine, tolerating (bounded)
//!   redundant work.
//! * [`theory`] — the closed-form quantities the experiments compare
//!   against: harmonic numbers, the paper's expected special-iteration and
//!   dependence counts.
//! * [`engine`] — the **unified execution engine**: one
//!   [`Runner`](engine::Runner) over all three executor schedules,
//!   configured by a [`RunConfig`](engine::RunConfig) (seed, mode, worker
//!   threads, instrumentation) and producing one
//!   [`RunReport`](engine::RunReport) shape for every algorithm.
//!
//! The algorithm crates (`ri-sort`, `ri-lp`, `ri-le-lists`, ...) plug into
//! the engine; each exposes a `*Problem` type implementing
//! [`engine::Problem`], whose `solve(&RunConfig)` returns the answer plus
//! the unified report, and registers an object-safe constructor in the
//! [`engine::registry`] layer so cross-algorithm drivers (the `ri` CLI,
//! serving layers) can pick problems by name at runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod depgraph;
pub mod engine;
pub mod theory;
pub mod type1;
pub mod type2;
pub mod type3;

pub use depgraph::DependenceGraph;
pub use engine::{
    ErasedProblem, ExecMode, OutputSummary, Problem, Registry, RunConfig, RunReport, Runner,
    ServeError, ServeErrorKind, ServeRequest, ServeResponse, WorkloadSpec,
};
pub use ri_pram::{Permutation, RoundLog, WorkCounter};
pub use theory::{harmonic, log2_ceil};
pub use type1::Type1Algorithm;
pub use type2::Type2Algorithm;
pub use type3::{prefix_rounds, Type3Algorithm};
