//! The Type 3 executor — Algorithm 2 of the paper (§2.3).
//!
//! Type 3 algorithms have **separating dependences** (Definition 2): running
//! iteration `b` first "separates" later iterations `a` and `c` whenever `b`
//! lies between them in `c`'s total order. It is *safe* to run iterations
//! concurrently — the result is still correct — but concurrency forgoes some
//! separations and therefore does extra (expected constant-factor) work.
//!
//! The executor (now in [`crate::engine`],
//! [`execute_type3`](crate::engine::execute_type3)) runs iterations in
//! doubling rounds `[2^{i-1}, 2^i)`. Every iteration of a round executes
//! **against the frozen state of the previous round** ("as if at iteration
//! 2^{i-1}"), producing a batch result; a combine step then reconciles the
//! batch, giving earlier iterations priority, so that the state after the
//! round matches the sequential state after iteration `2^i − 1` (or a
//! refinement of it, for the eager SCC variant). Theorem 2.6: `O(log n)`
//! rounds, every iteration receives `O(log n)` incoming dependences whp.
//!
//! This module keeps the [`Type3Algorithm`] contract and the
//! [`prefix_rounds`] schedule helper; runs execute through the engine
//! ([`execute_type3`](crate::engine::execute_type3) or an algorithm
//! crate's `*Problem::solve`).

/// A randomized incremental algorithm with separating dependences.
pub trait Type3Algorithm: Sync {
    /// Per-iteration batch output (e.g. the visit set of a graph search).
    type Output: Send;

    /// Number of iterations.
    fn len(&self) -> usize;

    /// Convenience emptiness test.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run iteration `k` against the frozen state of the previous round.
    /// Called concurrently for all iterations of a round (`&self`).
    fn run_iteration(&self, k: usize) -> Self::Output;

    /// Combine one round's outputs (iterations `lo..lo+outputs.len()`, in
    /// iteration order; earlier iterations have priority). Returns the work
    /// performed this round (for the logs).
    ///
    /// The buffer is borrowed so the executor can reuse its allocation
    /// across rounds: implementations typically `drain(..)` it (reading
    /// in place is equally fine — the executor clears it before refilling).
    fn combine(&mut self, lo: usize, outputs: &mut Vec<Self::Output>) -> u64;
}

/// The doubling-round schedule of Algorithm 2: `[0,1), [1,2), [2,4), ...`,
/// truncated to `n`.
pub fn prefix_rounds(n: usize) -> Vec<(usize, usize)> {
    let mut rounds = Vec::new();
    let mut lo = 0usize;
    let mut width = 1usize;
    while lo < n {
        let hi = (lo + width).min(n);
        rounds.push((lo, hi));
        // After the seed round [0,1), widths double: 1, 2, 4, ...
        width = if lo == 0 { 1 } else { width * 2 };
        lo = hi;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{execute_type3, RunConfig};

    #[test]
    fn schedule_shape() {
        assert_eq!(prefix_rounds(0), vec![]);
        assert_eq!(prefix_rounds(1), vec![(0, 1)]);
        assert_eq!(prefix_rounds(2), vec![(0, 1), (1, 2)]);
        assert_eq!(
            prefix_rounds(10),
            vec![(0, 1), (1, 2), (2, 4), (4, 8), (8, 10)]
        );
        // Rounds tile 0..n exactly.
        let r = prefix_rounds(1000);
        assert_eq!(r[0].0, 0);
        assert_eq!(r.last().unwrap().1, 1000);
        for w in r.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn round_count_logarithmic() {
        assert_eq!(prefix_rounds(1 << 10).len(), 11);
        assert_eq!(prefix_rounds((1 << 10) + 1).len(), 12);
    }

    /// Toy Type 3 problem: computing per-element "closest earlier value"
    /// (a stand-in for the LE-list distance update): each iteration reports
    /// its value; combine keeps a running minimum with earlier-first
    /// priority. Since min is order-insensitive, parallel == sequential — a
    /// pure executor plumbing test.
    struct MinSoFar {
        values: Vec<u64>,
        prefix_min: Vec<u64>, // prefix_min[k] = min(values[..=k])
        current: u64,
    }

    impl MinSoFar {
        fn new(values: Vec<u64>) -> Self {
            let n = values.len();
            MinSoFar {
                values,
                prefix_min: vec![0; n],
                current: u64::MAX,
            }
        }
    }

    impl Type3Algorithm for MinSoFar {
        type Output = u64;
        fn len(&self) -> usize {
            self.values.len()
        }
        fn run_iteration(&self, k: usize) -> u64 {
            self.values[k]
        }
        fn combine(&mut self, lo: usize, outputs: &mut Vec<u64>) -> u64 {
            let work = outputs.len() as u64;
            for (off, v) in outputs.drain(..).enumerate() {
                self.current = self.current.min(v);
                self.prefix_min[lo + off] = self.current;
            }
            work
        }
    }

    #[test]
    fn toy_matches_sequential_prefix_min() {
        let values: Vec<u64> = (0..1000u64).map(|i| (i * 7919) % 1000).collect();
        let mut algo = MinSoFar::new(values.clone());
        let report = execute_type3(&mut algo, &RunConfig::new().parallel());
        let mut cur = u64::MAX;
        for (k, &v) in values.iter().enumerate() {
            cur = cur.min(v);
            assert_eq!(algo.prefix_min[k], cur, "prefix min at {k}");
        }
        assert_eq!(report.rounds.rounds(), prefix_rounds(1000).len());
        assert_eq!(report.depth, prefix_rounds(1000).len());
        assert_eq!(report.total_items(), 1000);
    }

    #[test]
    fn sequential_mode_equals_parallel_output() {
        let values: Vec<u64> = (0..500u64).map(|i| (i * 104729) % 500).collect();
        let mut par = MinSoFar::new(values.clone());
        execute_type3(&mut par, &RunConfig::new().parallel());
        let mut seq = MinSoFar::new(values);
        let report = execute_type3(&mut seq, &RunConfig::new().sequential());
        assert_eq!(par.prefix_min, seq.prefix_min);
        assert_eq!(report.depth, 500, "sequential depth is the iteration count");
    }
}
