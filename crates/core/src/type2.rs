//! The Type 2 executor — Algorithm 1 of the paper (§2.2).
//!
//! Type 2 algorithms distinguish **special** iterations (which depend on
//! *all* earlier iterations and do `O(i)` work — a violated LP constraint, a
//! grid rebuild, a disk recomputation) from **regular** iterations (which
//! depend only on the closest earlier special iteration and do `O(1)` work).
//! The probability that iteration `j` is special is at most `c/j`, so there
//! are `O(log n)` specials whp (Theorem 2.2).
//!
//! The executor (now in [`crate::engine`],
//! [`execute_type2`](crate::engine::execute_type2)) processes iterations in
//! geometrically growing prefixes. For each prefix it repeatedly: checks all
//! outstanding iterations in parallel, finds the *earliest* special one (a
//! min-reduction), runs the regular iterations before it (their dependences
//! are satisfied), then runs that special iteration. The expected number of
//! sub-rounds per prefix is O(1).
//!
//! One deliberate deviation from the paper's pseudocode: after running
//! special iteration `l` we advance `j ← l + 1` rather than `j ← l`, so
//! every iteration executes exactly once. (With `j ← l` the pseudocode
//! re-examines `l`, which is then no longer special and would be re-run as a
//! regular iteration — harmless for LP where regular iterations are no-ops,
//! but a double-insert for the closest-pair grid.) The paper's upper bound
//! on the prefix loop (`2^{i-1}` with `i ≤ log₂ n`) is also extended to
//! cover all `n` iterations.
//!
//! This module keeps the [`Type2Algorithm`] contract; runs execute
//! through the engine ([`execute_type2`](crate::engine::execute_type2) or
//! an algorithm crate's `*Problem::solve`) and record into the unified
//! [`RunReport`](crate::engine::RunReport).

/// A randomized incremental algorithm with special/regular structure.
///
/// Executor guarantees when calling `is_special(k)`:
/// * all iterations `< j` (the sub-round frontier) have fully executed, and
/// * `begin_prefix(lo, hi)` has been called for the prefix containing `k`
///   (bulk-visibility hook: e.g. the closest-pair grid inserts the whole
///   prefix up front so checks can see in-prefix earlier points).
pub trait Type2Algorithm: Sync {
    /// Number of iterations.
    fn len(&self) -> usize;

    /// Convenience emptiness test.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Would iteration `k` be special at this point of the computation?
    /// Called concurrently; must be read-only.
    fn is_special(&self, k: usize) -> bool;

    /// Run a regular (O(1)) iteration.
    fn run_regular(&mut self, k: usize);

    /// Run a special iteration — may inspect all earlier iterations
    /// (`O(k)` work, internally parallel where the algorithm supports it).
    fn run_special(&mut self, k: usize);

    /// Prefix hook (see trait docs). Default: no-op.
    fn begin_prefix(&mut self, lo: usize, hi: usize) {
        let _ = (lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{execute_type2, RunConfig, RunReport};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn run_par<A: Type2Algorithm>(algo: &mut A) -> RunReport {
        execute_type2(algo, &RunConfig::new().parallel())
    }

    fn run_seq<A: Type2Algorithm>(algo: &mut A) -> RunReport {
        execute_type2(algo, &RunConfig::new().sequential())
    }

    /// Toy Type 2 problem: maintain the running maximum of a sequence.
    /// Iteration k is special iff `values[k]` exceeds the current max —
    /// which for a random order happens with probability 1/k (the classic
    /// "record" process), exactly the paper's structure with c = 1.
    struct RunningMax {
        values: Vec<u64>,
        current: AtomicU64,
        executed: Vec<bool>,
    }

    impl RunningMax {
        fn new(values: Vec<u64>) -> Self {
            let n = values.len();
            RunningMax {
                values,
                current: AtomicU64::new(0),
                executed: vec![false; n],
            }
        }
    }

    impl Type2Algorithm for RunningMax {
        fn len(&self) -> usize {
            self.values.len()
        }
        fn is_special(&self, k: usize) -> bool {
            self.values[k] > self.current.load(Ordering::Relaxed)
        }
        fn run_regular(&mut self, k: usize) {
            assert!(!self.executed[k], "iteration {k} ran twice");
            self.executed[k] = true;
        }
        fn run_special(&mut self, k: usize) {
            assert!(!self.executed[k], "iteration {k} ran twice");
            self.executed[k] = true;
            self.current.store(self.values[k], Ordering::Relaxed);
        }
    }

    #[test]
    fn parallel_matches_sequential_specials() {
        let values: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(2654435761) % 4096)
            .collect();
        let mut seq = RunningMax::new(values.clone());
        let seq_report = run_seq(&mut seq);
        let mut par = RunningMax::new(values);
        let par_report = run_par(&mut par);
        assert_eq!(seq_report.specials, par_report.specials);
        assert_eq!(
            seq.current.load(Ordering::Relaxed),
            par.current.load(Ordering::Relaxed)
        );
        assert!(par.executed.iter().all(|&b| b), "every iteration runs");
    }

    #[test]
    fn increasing_sequence_all_special() {
        let mut algo = RunningMax::new((1..=64).collect());
        let report = run_par(&mut algo);
        assert_eq!(report.specials.len(), 64);
    }

    #[test]
    fn decreasing_sequence_one_special() {
        let mut algo = RunningMax::new((1..=64).rev().collect());
        let report = run_par(&mut algo);
        assert_eq!(report.specials, vec![0]);
    }

    #[test]
    fn record_count_is_logarithmic_on_random_orders() {
        // E[#records] = H_n ≈ ln n; over seeds the average must be close.
        let n = 4096;
        let mut total = 0usize;
        let seeds = 20;
        for seed in 0..seeds {
            let order = ri_pram::random_permutation(n, seed);
            let values: Vec<u64> = order.iter().map(|&x| x as u64 + 1).collect();
            let mut algo = RunningMax::new(values);
            total += run_par(&mut algo).specials.len();
        }
        let avg = total as f64 / seeds as f64;
        let hn = crate::theory::harmonic(n);
        assert!(
            (avg - hn).abs() < 0.5 * hn,
            "avg specials {avg} far from H_n {hn}"
        );
    }

    #[test]
    fn sub_rounds_bounded() {
        // #sub-rounds per prefix ≤ #specials in prefix + 1.
        let order = ri_pram::random_permutation(1 << 12, 7);
        let values: Vec<u64> = order.iter().map(|&x| x as u64 + 1).collect();
        let mut algo = RunningMax::new(values);
        let report = run_par(&mut algo);
        assert!(report.total_sub_rounds() <= report.specials.len() + report.sub_rounds.len());
        assert_eq!(report.depth, report.total_sub_rounds());
    }

    #[test]
    fn empty_input() {
        let mut algo = RunningMax::new(vec![]);
        let report = run_par(&mut algo);
        assert!(report.specials.is_empty());
        assert!(report.sub_rounds.is_empty());
    }
}
