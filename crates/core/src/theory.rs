//! Closed-form quantities from the paper, used as the "paper" column of
//! every paper-vs-measured report.

/// The harmonic number `H_n = Σ_{i=1..n} 1/i`.
///
/// Theorem 2.1 bounds iteration dependence depth by `σ·H_n`; Theorem 2.2's
/// expected number of special iterations is `Σ c/j ≈ c·H_n`.
pub fn harmonic(n: usize) -> f64 {
    if n < 10_000 {
        (1..=n).map(|i| 1.0 / i as f64).sum()
    } else {
        // Asymptotic expansion: H_n = ln n + γ + 1/(2n) − 1/(12n²) + ...
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        let nf = n as f64;
        nf.ln() + EULER_GAMMA + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
    }
}

/// `⌈log₂ n⌉` (0 for `n ≤ 1`) — the round count of the Type 3 executor and
/// the prefix count of the Type 2 executor.
pub fn log2_ceil(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        usize::BITS as usize - (n - 1).leading_zeros() as usize
    }
}

/// Expected total dependences for a separating-dependence algorithm
/// (Corollary 2.4): `≤ 2 n ln n`.
pub fn separating_dependence_bound(n: usize) -> f64 {
    2.0 * n as f64 * (n.max(1) as f64).ln()
}

/// Theorem 4.5's bound on expected InCircle tests for 2-D Delaunay:
/// `24 n ln n + O(n)` — we report the leading constant, so the comparison
/// value is `24 n ln n`.
pub fn delaunay_incircle_bound(n: usize) -> f64 {
    24.0 * n as f64 * (n.max(1) as f64).ln()
}

/// The looser `36 n ln n` bound the paper also derives (and attributes to
/// the GKS-style accounting) — the ablation without Fact 4.1's savings.
pub fn delaunay_incircle_bound_loose(n: usize) -> f64 {
    36.0 * n as f64 * (n.max(1) as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        assert_eq!(harmonic(0), 0.0);
    }

    #[test]
    fn harmonic_asymptotic_consistent() {
        // The exact sum and asymptotic expansion must agree at the cutover.
        let exact: f64 = (1..=10_000).map(|i| 1.0 / i as f64).sum();
        assert!((harmonic(10_000) - exact).abs() < 1e-9);
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn bounds_monotone() {
        assert!(separating_dependence_bound(100) < separating_dependence_bound(1000));
        assert!(delaunay_incircle_bound(100) < delaunay_incircle_bound_loose(100));
    }
}
