//! Property tests for smallest enclosing disk: coverage, minimality vs the
//! O(n⁴) brute force, and sequential/parallel equivalence.

use proptest::prelude::*;
use ri_core::engine::{Problem, RunConfig};
use ri_enclosing::{brute_force_sed, EnclosingProblem};
use ri_geometry::Point2;

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

fn arb_points() -> impl Strategy<Value = Vec<Point2>> {
    proptest::collection::hash_set((-500i32..500, -500i32..500), 2..28).prop_map(|s| {
        s.into_iter()
            .map(|(x, y)| Point2::new(x as f64 / 13.0, y as f64 / 13.0))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn disk_contains_all_points(pts in arb_points()) {
        let (run, _) = EnclosingProblem::new(&pts).solve(&par_cfg());
        for &p in &pts {
            prop_assert!(run.disk.contains(p), "{p} escapes disk");
        }
    }

    #[test]
    fn radius_matches_brute_force(pts in arb_points()) {
        let got = EnclosingProblem::new(&pts).solve(&par_cfg()).0.disk.radius();
        let want = brute_force_sed(&pts).radius();
        prop_assert!(
            (got - want).abs() <= 1e-6 * (1.0 + want),
            "radius {got} vs brute-force {want}"
        );
    }

    #[test]
    fn parallel_equals_sequential(pts in arb_points()) {
        let (seq, seq_report) = EnclosingProblem::new(&pts).solve(&seq_cfg());
        let (par, par_report) = EnclosingProblem::new(&pts).solve(&par_cfg());
        prop_assert_eq!(seq.disk, par.disk);
        prop_assert_eq!(seq_report.specials, par_report.specials);
        prop_assert_eq!(seq.update2_calls, par.update2_calls);
    }
}
