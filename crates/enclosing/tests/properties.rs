//! Property tests for smallest enclosing disk: coverage, minimality vs the
//! O(n⁴) brute force, and sequential/parallel equivalence.

use proptest::prelude::*;
use ri_enclosing::{brute_force_sed, sed_parallel, sed_sequential};
use ri_geometry::Point2;

fn arb_points() -> impl Strategy<Value = Vec<Point2>> {
    proptest::collection::hash_set((-500i32..500, -500i32..500), 2..28).prop_map(|s| {
        s.into_iter()
            .map(|(x, y)| Point2::new(x as f64 / 13.0, y as f64 / 13.0))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn disk_contains_all_points(pts in arb_points()) {
        let run = sed_parallel(&pts);
        for &p in &pts {
            prop_assert!(run.disk.contains(p), "{p} escapes disk");
        }
    }

    #[test]
    fn radius_matches_brute_force(pts in arb_points()) {
        let got = sed_parallel(&pts).disk.radius();
        let want = brute_force_sed(&pts).radius();
        prop_assert!(
            (got - want).abs() <= 1e-6 * (1.0 + want),
            "radius {got} vs brute-force {want}"
        );
    }

    #[test]
    fn parallel_equals_sequential(pts in arb_points()) {
        let seq = sed_sequential(&pts);
        let par = sed_parallel(&pts);
        prop_assert_eq!(seq.disk, par.disk);
        prop_assert_eq!(seq.stats.specials, par.stats.specials);
        prop_assert_eq!(seq.update2_calls, par.update2_calls);
    }
}
