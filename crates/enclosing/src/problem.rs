//! The problem-level API: [`EnclosingProblem`], solving through the
//! unified engine to `(SedOutput, RunReport)`.

use ri_core::engine::{Executable, Problem, RunConfig, RunReport, Runner};
use ri_geometry::Point2;

pub use crate::welzl::SedOutput;

/// Welzl's smallest enclosing disk (§5.3 of the paper, Type 2). Points are
/// inserted in the order given (pre-shuffle them for the paper's
/// expectation bounds); `len() >= 2`, general position.
///
/// ```
/// use ri_core::engine::{Problem, RunConfig};
/// use ri_enclosing::EnclosingProblem;
/// use ri_geometry::Point2;
///
/// let pts = vec![
///     Point2::new(-1.0, 0.0),
///     Point2::new(1.0, 0.0),
///     Point2::new(0.0, 0.5),
/// ];
/// let (out, report) = EnclosingProblem::new(&pts).solve(&RunConfig::new());
/// assert!((out.disk.radius() - 1.0).abs() < 1e-9);
/// assert!(report.checks > 0);
/// ```
#[derive(Debug)]
pub struct EnclosingProblem<'a> {
    points: &'a [Point2],
}

impl<'a> EnclosingProblem<'a> {
    /// A smallest-enclosing-disk problem over `points`.
    pub fn new(points: &'a [Point2]) -> Self {
        EnclosingProblem { points }
    }
}

struct SedExec<'a> {
    points: &'a [Point2],
    out: Option<SedOutput>,
}

impl Executable for SedExec<'_> {
    fn name(&self) -> &str {
        "enclosing-disk"
    }
    fn execute(&mut self, cfg: &RunConfig) -> RunReport {
        let (out, report) = crate::welzl::run_with(self.points, cfg);
        self.out = Some(out);
        report
    }
}

impl Problem for EnclosingProblem<'_> {
    type Output = SedOutput;

    fn solve(&self, cfg: &RunConfig) -> (SedOutput, RunReport) {
        let mut exec = SedExec {
            points: self.points,
            out: None,
        };
        let report = Runner::new(cfg.clone()).run(&mut exec);
        (exec.out.expect("execute always produces output"), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_geometry::PointDistribution;

    #[test]
    fn modes_agree() {
        let pts = PointDistribution::UniformDisk.generate(1500, 8);
        let problem = EnclosingProblem::new(&pts);
        let (seq, _) = problem.solve(&RunConfig::new().sequential());
        let (par, report) = problem.solve(&RunConfig::new().parallel());
        assert_eq!(seq.disk, par.disk);
        assert_eq!(seq.update2_calls, par.update2_calls);
        assert_eq!(report.algorithm, "enclosing-disk");
    }
}
