//! # `ri-enclosing` — Welzl's smallest enclosing disk
//! (§5.3 of the paper, Type 2)
//!
//! Points arrive in random order while the smallest disk enclosing the
//! prefix is maintained. An iteration is **special** when its point falls
//! outside the current disk — that point must then lie *on* the boundary of
//! the new disk, and `Update1` rebuilds the disk by scanning all earlier
//! points (with a nested `Update2` scan when a second boundary point is
//! discovered, and a circumcircle when a third is).
//!
//! Backwards analysis gives `P[iteration i is special] ≤ 3/i` (the disk is
//! determined by at most 3 points) and `P[Update2 at step j] ≤ 2/j`, so the
//! expected work is `O(n)` (Theorem 5.3). The parallel version runs
//! `Update1`/`Update2` as repeated *find-earliest-outside* min-reductions
//! over the prefix, exactly as the paper describes, giving `O(log² n)`
//! depth through the Type 2 executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod problem;
pub mod registry;
mod welzl;

pub use problem::EnclosingProblem;
pub use welzl::{brute_force_sed, SedOutput};
