//! Welzl's incremental smallest enclosing disk, in the Update1/Update2
//! formulation the paper analyses.

use rayon::prelude::*;

use ri_core::engine::{execute_type2, ExecMode, RunConfig, RunReport};
use ri_core::Type2Algorithm;
use ri_geometry::{circumcircle, diametral_disk, Disk, Point2};

struct WelzlState<'a> {
    points: &'a [Point2],
    disk: Option<Disk>,
    update2_calls: usize,
    contains_tests: std::sync::atomic::AtomicU64,
    parallel_scans: bool,
}

impl<'a> WelzlState<'a> {
    fn new(points: &'a [Point2], parallel_scans: bool) -> Self {
        WelzlState {
            points,
            disk: None,
            update2_calls: 0,
            contains_tests: std::sync::atomic::AtomicU64::new(0),
            parallel_scans,
        }
    }

    #[inline]
    fn count(&self, n: u64) {
        self.contains_tests
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Earliest index in `range` strictly outside `disk`, if any.
    fn earliest_outside(&self, disk: &Disk, range: std::ops::Range<usize>) -> Option<usize> {
        self.count(range.len() as u64);
        if self.parallel_scans && range.len() > 2048 {
            range
                .into_par_iter()
                .find_first(|&j| disk.strictly_excludes(self.points[j]))
        } else {
            range
                .into_iter()
                .find(|&j| disk.strictly_excludes(self.points[j]))
        }
    }

    /// Update2(i, j): smallest disk with `points[i]` and `points[j]` on the
    /// boundary, enclosing `points[..j]`.
    fn update2(&mut self, i: usize, j: usize) -> Disk {
        self.update2_calls += 1;
        let mut disk = diametral_disk(self.points[i], self.points[j]);
        let mut from = 0usize;
        while let Some(k) = self.earliest_outside(&disk, from..j) {
            disk = circumcircle(self.points[i], self.points[j], self.points[k])
                .expect("boundary points in general position");
            from = k + 1;
        }
        disk
    }

    /// Update1(i): smallest disk with `points[i]` on the boundary,
    /// enclosing `points[..i]`.
    fn update1(&mut self, i: usize) -> Disk {
        let mut disk = diametral_disk(self.points[0], self.points[i]);
        let mut from = 1usize;
        while let Some(j) = self.earliest_outside(&disk, from..i) {
            disk = self.update2(i, j);
            from = j + 1;
        }
        disk
    }
}

impl Type2Algorithm for WelzlState<'_> {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn is_special(&self, k: usize) -> bool {
        if k == 0 {
            return false;
        }
        match &self.disk {
            None => true, // second point initializes the disk
            Some(d) => {
                self.count(1);
                d.strictly_excludes(self.points[k])
            }
        }
    }

    fn run_regular(&mut self, _k: usize) {}

    fn run_special(&mut self, k: usize) {
        let disk = if self.disk.is_none() {
            diametral_disk(self.points[0], self.points[k])
        } else {
            self.update1(k)
        };
        self.disk = Some(disk);
    }
}

/// The answer of a smallest-enclosing-disk run.
#[derive(Debug, Clone, PartialEq)]
pub struct SedOutput {
    /// The smallest enclosing disk of all points.
    pub disk: Disk,
    /// Number of nested `Update2` scans across the whole run.
    pub update2_calls: usize,
    /// Total containment tests (the work measure of §5.3).
    pub contains_tests: u64,
}

/// Engine entry point: solve under `cfg` (parallel `Update1`/`Update2`
/// scans in parallel mode), returning the answer and the unified report.
pub(crate) fn run_with(points: &[Point2], cfg: &RunConfig) -> (SedOutput, RunReport) {
    assert!(points.len() >= 2, "need at least two points");
    // No native relaxed loop: Welzl's nested Update1/Update2 rebuilds
    // leave no slack for a relaxed order, so relaxed requests run the
    // exact parallel schedule and say so in the report.
    let fallback = matches!(cfg.mode, ExecMode::Relaxed { .. });
    let exact;
    let cfg = if fallback {
        exact = cfg.clone().parallel();
        &exact
    } else {
        cfg
    };
    let mut st = WelzlState::new(points, cfg.mode == ExecMode::Parallel);
    let mut report = execute_type2(&mut st, cfg);
    if fallback {
        report.relaxed_fallback =
            Some("enclosing has no native relaxed loop; ran exact parallel".into());
    }
    report.algorithm = "enclosing-disk".to_string();
    (
        SedOutput {
            disk: st.disk.expect("n >= 2 guarantees a disk"),
            update2_calls: st.update2_calls,
            contains_tests: st.contains_tests.into_inner(),
        },
        report,
    )
}

/// Brute-force reference: the best disk among all diametral pairs and all
/// circumcircle triples that contains every point. O(n⁴) — tests only.
pub fn brute_force_sed(points: &[Point2]) -> Disk {
    let n = points.len();
    assert!(n >= 2);
    let mut best: Option<Disk> = None;
    let mut consider = |d: Disk| {
        if points.iter().all(|&p| d.contains(p)) && best.is_none_or(|b| d.radius_sq < b.radius_sq) {
            best = Some(d);
        }
    };
    for i in 0..n {
        for j in i + 1..n {
            consider(diametral_disk(points[i], points[j]));
            for k in j + 1..n {
                if let Some(d) = circumcircle(points[i], points[j], points[k]) {
                    consider(d);
                }
            }
        }
    }
    best.expect("some disk always encloses")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-local stand-in for the retired `SedRun` shape.
    struct Run {
        disk: Disk,
        stats: RunReport,
        update2_calls: usize,
        contains_tests: u64,
    }

    fn run_mode(points: &[Point2], cfg: &RunConfig) -> Run {
        let (out, stats) = run_with(points, cfg);
        Run {
            disk: out.disk,
            stats,
            update2_calls: out.update2_calls,
            contains_tests: out.contains_tests,
        }
    }

    fn sed_sequential(points: &[Point2]) -> Run {
        run_mode(points, &RunConfig::new().sequential())
    }

    fn sed_parallel(points: &[Point2]) -> Run {
        run_mode(points, &RunConfig::new().parallel())
    }
    use ri_geometry::distributions::dedup_points;
    use ri_geometry::PointDistribution;
    use ri_pram::random_permutation;

    fn workload(n: usize, seed: u64, dist: PointDistribution) -> Vec<Point2> {
        let pts = dedup_points(dist.generate(n, seed));
        let order = random_permutation(pts.len(), seed ^ 0x5ed);
        order.iter().map(|&i| pts[i]).collect()
    }

    fn radius_close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * (1.0 + a.max(b))
    }

    #[test]
    fn matches_brute_force() {
        for seed in 0..8 {
            let pts = workload(40, seed, PointDistribution::UniformDisk);
            let want = brute_force_sed(&pts);
            let seq = sed_sequential(&pts);
            let par = sed_parallel(&pts);
            assert!(
                radius_close(seq.disk.radius(), want.radius()),
                "seq radius {} vs brute {} at seed {seed}",
                seq.disk.radius(),
                want.radius()
            );
            assert!(
                radius_close(par.disk.radius(), want.radius()),
                "par radius {} vs brute {} at seed {seed}",
                par.disk.radius(),
                want.radius()
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        for seed in 0..8 {
            let pts = workload(400, seed, PointDistribution::UniformSquare);
            let seq = sed_sequential(&pts);
            let par = sed_parallel(&pts);
            assert_eq!(seq.disk, par.disk, "seed {seed}");
            assert_eq!(seq.stats.specials, par.stats.specials, "seed {seed}");
            assert_eq!(seq.update2_calls, par.update2_calls, "seed {seed}");
        }
    }

    #[test]
    fn contains_all_points() {
        for dist in [
            PointDistribution::UniformSquare,
            PointDistribution::NearCircle,
            PointDistribution::Clusters(4),
        ] {
            let pts = workload(2000, 7, dist);
            let run = sed_parallel(&pts);
            for (i, &p) in pts.iter().enumerate() {
                assert!(
                    run.disk.contains(p),
                    "{} point {i} escapes the disk",
                    dist.name()
                );
            }
        }
    }

    #[test]
    fn update1_count_logarithmic() {
        let n = 1 << 13;
        let trials = 8;
        let mut total = 0usize;
        for seed in 0..trials {
            let pts = workload(n, seed, PointDistribution::UniformDisk);
            total += sed_parallel(&pts).stats.specials.len();
        }
        let avg = total as f64 / trials as f64;
        let bound = 3.0 * ri_core::harmonic(n) + 4.0;
        assert!(avg <= bound, "avg Update1 {avg} above 3·H_n + 4 = {bound}");
    }

    #[test]
    fn near_circle_is_harder_but_correct() {
        // Adversarial: most points near the boundary → many specials, but
        // the answer must still match brute force on a subsample size.
        let pts = workload(30, 3, PointDistribution::NearCircle);
        let want = brute_force_sed(&pts);
        let run = sed_parallel(&pts);
        assert!(radius_close(run.disk.radius(), want.radius()));
    }

    #[test]
    fn work_is_linear() {
        // Theorem 5.3 bounds the *expected* work by O(n); a single order can
        // legitimately be several times the mean (one late special pays
        // O(n) by itself), so test the average over seeds.
        let n = 1 << 14;
        let seeds = 6u64;
        let total: u64 = (0..seeds)
            .map(|seed| {
                let pts = workload(n, seed, PointDistribution::UniformSquare);
                sed_parallel(&pts).contains_tests
            })
            .sum();
        let avg = total as f64 / seeds as f64;
        assert!(avg < 60.0 * n as f64, "avg contains tests {avg} not O(n)");
    }

    #[test]
    fn two_points() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(2.0, 0.0)];
        let run = sed_parallel(&pts);
        assert_eq!(run.disk.center, Point2::new(1.0, 0.0));
        assert!(radius_close(run.disk.radius(), 1.0));
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point2> = random_permutation(50, 2)
            .iter()
            .map(|&i| Point2::new(i as f64, 2.0 * i as f64))
            .collect();
        let run = sed_parallel(&pts);
        // Enclosing disk of collinear points: diametral disk of extremes.
        for &p in &pts {
            assert!(run.disk.contains(p));
        }
        assert!(radius_close(
            run.disk.radius(),
            (Point2::new(0.0, 0.0).dist(Point2::new(49.0, 98.0))) / 2.0
        ));
    }
}
