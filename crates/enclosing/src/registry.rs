//! Registry entry: `"enclosing"` — Welzl's smallest enclosing disk over a
//! seeded point workload (§5.3, Type 2). The workload shape is a
//! point-distribution name (default `"uniform-disk"`).

use ri_core::engine::registry::{ErasedProblem, OutputSummary, Registry};
use ri_core::engine::{Problem, RunConfig, RunReport};
use ri_geometry::{named_point_workload, Point2};

use crate::EnclosingProblem;

/// Register this crate's problem.
pub fn register(reg: &mut Registry) {
    reg.register(
        "enclosing",
        "Welzl's smallest enclosing disk of a point workload (§5.3, Type 2)",
        |spec| {
            let points = named_point_workload(
                "enclosing",
                spec.n,
                spec.seed,
                spec.shape_or("uniform-disk"),
                2,
            )?;
            Ok(Box::new(EnclosingWorkload { points }))
        },
    );
}

struct EnclosingWorkload {
    points: Vec<Point2>,
}

impl ErasedProblem for EnclosingWorkload {
    fn name(&self) -> &str {
        "enclosing"
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (out, report) = EnclosingProblem::new(&self.points).solve(cfg);
        let mut s = OutputSummary::new();
        s.answer_num("points", self.points.len() as f64)
            .answer_num("center_x", out.disk.center.x)
            .answer_num("center_y", out.disk.center.y)
            .answer_num("radius", out.disk.radius())
            .answer_num("update2_calls", out.update2_calls as f64)
            .metric_num("contains_tests", out.contains_tests as f64);
        (s, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::WorkloadSpec;

    #[test]
    fn registered_name_solves() {
        let mut reg = Registry::new();
        register(&mut reg);
        let (summary, report) = reg
            .solve("enclosing", &WorkloadSpec::new(400, 6), &RunConfig::new())
            .unwrap();
        assert!(summary.to_json().contains("\"radius\":"));
        assert!(report.checks > 0);
        assert!(reg
            .construct("enclosing", &WorkloadSpec::new(1, 6))
            .is_err());
    }
}
