//! Seeded synthetic graph generators.
//!
//! The §6 theorems hold for *any* input graph over the random vertex order;
//! these families pick the regimes that stress them: sparse/dense uniform
//! digraphs (G(n,m)), skewed-degree RMAT (web-like, the SCC application's
//! practical habitat), high-diameter grids (stress search depth), DAGs (no
//! nontrivial SCCs — worst case for partition refinement), and
//! planted-SCC graphs (known ground truth of every size).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrGraph;

/// Validated edge count for an average-out-degree parameter: the shared
/// vocabulary of the graph-backed workload constructors (`le-lists`,
/// `scc`). Accepts degrees in `(0, 64]`.
pub fn degree_edges(n: usize, degree: f64) -> Result<usize, String> {
    if !degree.is_finite() || degree <= 0.0 || degree > 64.0 {
        return Err(format!("average degree must be in (0, 64], got {degree}"));
    }
    Ok((n as f64 * degree) as usize)
}

/// Uniform random digraph with `n` vertices and `m` edges (self-loops
/// excluded, parallel edges possible). `symmetric` adds each edge in both
/// directions (an undirected graph for LE-lists).
pub fn gnm(n: usize, m: usize, seed: u64, symmetric: bool) -> CsrGraph {
    assert!(
        n >= 2 || m == 0,
        "need at least two vertices to place edges"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(if symmetric { 2 * m } else { m });
    for _ in 0..m {
        let u = rng.gen_range(0..n) as u32;
        let mut v = rng.gen_range(0..n) as u32;
        while v == u {
            v = rng.gen_range(0..n) as u32;
        }
        edges.push((u, v));
        if symmetric {
            edges.push((v, u));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Weighted variant of [`gnm`] with weights uniform in `[1, 2)` —
/// generically distinct, which keeps LE-list distance ties measure-zero.
pub fn gnm_weighted(n: usize, m: usize, seed: u64, symmetric: bool) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let g = gnm(n, m, seed, symmetric);
    let mut edges = Vec::with_capacity(g.num_edges());
    let mut weights = Vec::with_capacity(g.num_edges());
    for u in 0..g.num_vertices() as u32 {
        for &v in g.neighbors(u) {
            edges.push((u, v));
            weights.push(1.0 + rng.gen::<f64>());
        }
    }
    // Symmetric graphs must keep w(u,v) == w(v,u): regenerate canonically.
    if symmetric {
        for (k, &(u, v)) in edges.iter().enumerate() {
            let (a, b) = if u <= v { (u, v) } else { (v, u) };
            let mut wrng = StdRng::seed_from_u64(
                seed ^ ((a as u64) << 32 | b as u64).wrapping_mul(0x9e3779b97f4a7c15),
            );
            weights[k] = 1.0 + wrng.gen::<f64>();
        }
    }
    CsrGraph::from_weighted_edges(g.num_vertices(), &edges, &weights)
}

/// RMAT power-law digraph (Chakrabarti–Zhan–Faloutsos parameters
/// a=0.57, b=0.19, c=0.19, d=0.05). `scale` gives `n = 2^scale`.
pub fn rmat(scale: u32, m: usize, seed: u64) -> CsrGraph {
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < 0.57 {
                (0, 0)
            } else if r < 0.76 {
                (0, 1)
            } else if r < 0.95 {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            edges.push((u as u32, v as u32));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// `side × side` grid, 4-neighbor, both directions (an undirected
/// high-diameter graph).
pub fn grid2d(side: usize) -> CsrGraph {
    let n = side * side;
    let id = |x: usize, y: usize| (y * side + x) as u32;
    let mut edges = Vec::with_capacity(4 * n);
    for y in 0..side {
        for x in 0..side {
            if x + 1 < side {
                edges.push((id(x, y), id(x + 1, y)));
                edges.push((id(x + 1, y), id(x, y)));
            }
            if y + 1 < side {
                edges.push((id(x, y), id(x, y + 1)));
                edges.push((id(x, y + 1), id(x, y)));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Exactly-`n`-vertex RMAT: samples cells in the `2^ceil(log2 n)` RMAT
/// grid, scatters ids by a seeded permutation, and resamples any edge
/// touching an id ≥ `n` — the skewed degree profile survives and `n` is
/// honored exactly. [`rmat`] rounds `n` up to a power of two, which
/// silently inflates the instance (and a streaming session's capacity)
/// for every non-power-of-two request; registry shapes use this variant.
/// `symmetric` adds each edge in both directions (for LE-lists).
pub fn rmat_n(n: usize, m: usize, seed: u64, symmetric: bool) -> CsrGraph {
    assert!(n >= 2);
    let scale = (n as f64).log2().ceil().max(1.0) as u32;
    let full = 1usize << scale;
    let ids = ri_pram::random_permutation(full, seed ^ 0x43a7);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(if symmetric { 2 * m } else { m });
    for _ in 0..m {
        // Rejection-resample until both permuted endpoints land < n and
        // differ; bounded so a hostile parameter cannot spin forever.
        for _attempt in 0..64 {
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..scale {
                let r: f64 = rng.gen();
                let (du, dv) = if r < 0.57 {
                    (0, 0)
                } else if r < 0.76 {
                    (0, 1)
                } else if r < 0.95 {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            let (u, v) = (ids[u], ids[v]);
            if u < n && v < n && u != v {
                edges.push((u as u32, v as u32));
                if symmetric {
                    edges.push((v as u32, u as u32));
                }
                break;
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Exactly-`n`-vertex grid: the row-major prefix of the `side × side`
/// grid with `side = ceil(sqrt(n))`, 4-neighbor, both directions, with
/// vertex ids scattered by a seeded permutation.
///
/// [`grid2d`] always builds the full `side²` square, so constructing
/// "about n" vertices through it silently inflates the instance
/// (n = 10 → 16 vertices) and ignores the workload seed; the registry
/// shapes use this variant so `spec.n` is honored exactly and per-n
/// accounting (streaming capacities, bench item counts) stays truthful.
/// The prefix of a grid is connected whenever the full grid is.
pub fn grid2d_n(n: usize, seed: u64) -> CsrGraph {
    let side = (n as f64).sqrt().ceil().max(1.0) as usize;
    let ids = ri_pram::random_permutation(n, seed ^ 0x62d);
    let id = |x: usize, y: usize| -> Option<u32> {
        let k = y * side + x;
        (x < side && k < n).then(|| ids[k] as u32)
    };
    let mut edges = Vec::with_capacity(4 * n);
    for y in 0..side {
        for x in 0..side {
            let Some(u) = id(x, y) else { continue };
            if let Some(v) = id(x + 1, y) {
                edges.push((u, v));
                edges.push((v, u));
            }
            if let Some(v) = id(x, y + 1) {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Deep-path digraph: a spine `v_0 → v_1 → … → v_{n-1}` in a hidden
/// random vertex order, plus `extra` shortcut edges — mostly short
/// forward hops, with every eighth a long *back* edge closing a giant
/// cycle. Directed, the result is a high-diameter graph whose SCCs are
/// long stretches of the spine (the worst case for reachability-based
/// partitioning); `symmetric` adds every edge in both directions,
/// giving the high-diameter long-chain stress case for LE-lists.
pub fn deep_path(n: usize, extra: usize, seed: u64, symmetric: bool) -> CsrGraph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let order = ri_pram::random_permutation(n, seed ^ 0xdee9);
    let mut edges = Vec::with_capacity((n + extra) * if symmetric { 2 } else { 1 });
    let push = |edges: &mut Vec<(u32, u32)>, a: usize, b: usize| {
        if a == b {
            return;
        }
        edges.push((order[a] as u32, order[b] as u32));
        if symmetric {
            edges.push((order[b] as u32, order[a] as u32));
        }
    };
    for i in 0..n - 1 {
        push(&mut edges, i, i + 1);
    }
    for k in 0..extra {
        if k % 8 == 7 {
            // Long back edge over roughly a quarter to half of the spine.
            let span = rng.gen_range(n / 4..n / 2 + 2).min(n - 1).max(1);
            let hi = rng.gen_range(span..n);
            push(&mut edges, hi, hi - span);
        } else {
            let i = rng.gen_range(0..n - 1);
            let hop = rng.gen_range(2usize..8).min(n - 1 - i).max(1);
            push(&mut edges, i, i + hop);
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Random DAG: `m` edges `u → v` with `u < v` in a hidden random topological
/// order. Every SCC is trivial — the stress case for SCC partitioning.
pub fn random_dag(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let order = ri_pram::random_permutation(n, seed ^ 0xDA6);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        while b == a {
            b = rng.gen_range(0..n);
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        edges.push((order[lo] as u32, order[hi] as u32));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Planted SCC graph: `k` components of the given `sizes`, each a directed
/// cycle plus `intra_extra` random internal edges, connected by
/// `inter_edges` random edges that respect a hidden component order (so the
/// planted components are exactly the SCCs). Returns the graph and the
/// ground-truth component id per vertex.
pub fn planted_sccs(
    sizes: &[usize],
    intra_extra: usize,
    inter_edges: usize,
    seed: u64,
) -> (CsrGraph, Vec<u32>) {
    let n: usize = sizes.iter().sum();
    let mut rng = StdRng::seed_from_u64(seed);
    // Scatter vertex ids so component membership is not contiguous.
    let ids = ri_pram::random_permutation(n, seed ^ 0x5cc);
    let mut truth = vec![0u32; n];
    let mut edges = Vec::new();
    let mut comp_ranges = Vec::new();
    let mut base = 0usize;
    for (c, &sz) in sizes.iter().enumerate() {
        assert!(sz >= 1);
        let members: Vec<u32> = (base..base + sz).map(|k| ids[k] as u32).collect();
        for &v in &members {
            truth[v as usize] = c as u32;
        }
        // Cycle makes the component strongly connected.
        for w in 0..sz {
            edges.push((members[w], members[(w + 1) % sz]));
        }
        // Extra internal edges.
        if sz >= 2 {
            for _ in 0..intra_extra * sz / n.max(1) {
                let a = members[rng.gen_range(0..sz)];
                let b = members[rng.gen_range(0..sz)];
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        comp_ranges.push(members);
        base += sz;
    }
    // Inter-component edges only from earlier to later components.
    let k = sizes.len();
    if k >= 2 {
        for _ in 0..inter_edges {
            let c1 = rng.gen_range(0..k - 1);
            let c2 = rng.gen_range(c1 + 1..k);
            let a = comp_ranges[c1][rng.gen_range(0..sizes[c1])];
            let b = comp_ranges[c2][rng.gen_range(0..sizes[c2])];
            edges.push((a, b));
        }
    }
    (CsrGraph::from_edges(n, &edges), truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_shape_and_seeding() {
        let g = gnm(100, 500, 7, false);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
        assert_eq!(gnm(100, 500, 7, false), g);
        assert_ne!(gnm(100, 500, 8, false), g);
        // No self loops.
        for u in 0..100u32 {
            assert!(!g.neighbors(u).contains(&u));
        }
    }

    #[test]
    fn gnm_symmetric_has_both_directions() {
        let g = gnm(50, 200, 3, true);
        for u in 0..50u32 {
            for &v in g.neighbors(u) {
                assert!(g.neighbors(v).contains(&u), "missing reverse of {u}->{v}");
            }
        }
    }

    #[test]
    fn gnm_weighted_symmetric_weights_match() {
        let g = gnm_weighted(40, 100, 11, true);
        for u in 0..40u32 {
            for (v, w) in g.edges(u) {
                let back: Vec<f64> = g
                    .edges(v)
                    .filter(|&(t, _)| t == u)
                    .map(|(_, w2)| w2)
                    .collect();
                assert!(back.contains(&w), "asymmetric weight {u}<->{v}");
            }
        }
    }

    #[test]
    fn rmat_skewed_degrees() {
        let g = rmat(10, 8192, 5);
        let max_deg = (0..g.num_vertices() as u32)
            .map(|u| g.degree(u))
            .max()
            .unwrap();
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > 4.0 * avg,
            "rmat should be skewed: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn grid_degrees() {
        let g = grid2d(10);
        assert_eq!(g.num_vertices(), 100);
        // Corner has degree 2, interior 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(11), 4);
    }

    #[test]
    fn rmat_n_honors_n_exactly_and_stays_skewed() {
        for n in [2, 3, 100, 128, 1000] {
            let g = rmat_n(n, 4 * n, 5, false);
            assert_eq!(g.num_vertices(), n, "rmat_n inflated n={n}");
        }
        let g = rmat_n(1000, 8000, 5, false);
        assert_eq!(rmat_n(1000, 8000, 5, false), g);
        assert_ne!(rmat_n(1000, 8000, 6, false), g);
        let max_deg = (0..1000u32).map(|u| g.degree(u)).max().unwrap();
        let avg = g.num_edges() as f64 / 1000.0;
        assert!(
            max_deg as f64 > 4.0 * avg,
            "rmat_n should stay skewed: max {max_deg}, avg {avg}"
        );
        // Symmetric variant has both directions.
        let s = rmat_n(100, 300, 2, true);
        for u in 0..100u32 {
            for &v in s.neighbors(u) {
                assert!(s.neighbors(v).contains(&u), "missing reverse of {u}->{v}");
            }
        }
    }

    #[test]
    fn grid2d_n_honors_n_exactly_and_seed() {
        for n in [1, 2, 5, 10, 16, 37, 100] {
            let g = grid2d_n(n, 3);
            assert_eq!(g.num_vertices(), n, "grid2d_n inflated n={n}");
        }
        let a = grid2d_n(50, 1);
        assert_eq!(grid2d_n(50, 1), a, "not reproducible");
        assert_ne!(grid2d_n(50, 2), a, "grid2d_n ignores seed");
        // Connected: BFS from vertex 0 reaches everything.
        let g = grid2d_n(37, 9);
        let mut seen = [false; 37];
        let mut queue = vec![0u32];
        seen[0] = true;
        while let Some(u) = queue.pop() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "grid prefix disconnected");
    }

    #[test]
    fn deep_path_shape() {
        let g = deep_path(100, 200, 5, false);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(deep_path(100, 200, 5, false), g);
        assert_ne!(deep_path(100, 200, 6, false), g);
        // Symmetric variant has both directions.
        let s = deep_path(60, 30, 2, true);
        for u in 0..60u32 {
            for &v in s.neighbors(u) {
                assert!(s.neighbors(v).contains(&u), "missing reverse of {u}->{v}");
            }
        }
        // Tiny instances must not panic.
        for n in [2, 3, 4] {
            deep_path(n, 16, 1, false);
            deep_path(n, 16, 1, true);
        }
    }

    #[test]
    fn dag_is_acyclic() {
        let g = random_dag(200, 1000, 2);
        // Kahn's algorithm must consume all vertices.
        let n = g.num_vertices();
        let mut indeg = vec![0usize; n];
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                indeg[v as usize] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in g.neighbors(u) {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
        assert_eq!(seen, n, "cycle detected in random_dag");
    }

    #[test]
    fn planted_sccs_ground_truth_shape() {
        let sizes = vec![5, 1, 10, 3];
        let (g, truth) = planted_sccs(&sizes, 10, 20, 9);
        assert_eq!(g.num_vertices(), 19);
        for c in 0..sizes.len() as u32 {
            assert_eq!(truth.iter().filter(|&&t| t == c).count(), sizes[c as usize]);
        }
    }
}
