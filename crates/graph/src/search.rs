//! Graph searches: the SSSP / reachability "black boxes" of §6.
//!
//! Work accounting: every search counts *visits* (settled vertices) and
//! *edge relaxations* into caller-supplied [`WorkCounter`]s, because the
//! paper's Theorems 6.2/6.4 are statements about exactly these totals
//! (`O(W_SP log n)`, `O(W_R log n)`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rayon::prelude::*;

use ri_pram::hash::FxHashMap;
use ri_pram::WorkCounter;

use crate::csr::CsrGraph;

/// Unreachable marker for integer distances.
pub const INF_U32: u32 = u32::MAX;

/// Sequential BFS distances (hop counts) from `src`; `INF_U32` where
/// unreachable.
pub fn bfs_distances(g: &CsrGraph, src: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![INF_U32; n];
    dist[src as usize] = 0;
    let mut frontier = vec![src];
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if dist[v as usize] == INF_U32 {
                    dist[v as usize] = d;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Parallel frontier BFS distances from `src` (atomic claim per vertex).
/// Matches [`bfs_distances`] exactly.
pub fn parallel_bfs_distances(g: &CsrGraph, src: u32) -> Vec<u32> {
    use std::sync::atomic::{AtomicU32, Ordering};
    let n = g.num_vertices();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF_U32)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![src];
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        frontier = frontier
            .par_iter()
            .flat_map_iter(|&u| {
                g.neighbors(u).iter().filter_map(|&v| {
                    dist[v as usize]
                        .compare_exchange(INF_U32, d, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                        .then_some(v)
                })
            })
            .collect();
    }
    dist.into_iter().map(|a| a.into_inner()).collect()
}

/// Sequential Dijkstra distances from `src` (`f64::INFINITY` where
/// unreachable). Unweighted graphs use unit weights.
pub fn dijkstra_distances(g: &CsrGraph, src: u32) -> Vec<f64> {
    let n = g.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap: BinaryHeap<Reverse<(OrderedF64, u32)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((OrderedF64(0.0), src)));
    while let Some(Reverse((OrderedF64(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in g.edges(u) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((OrderedF64(nd), v)));
            }
        }
    }
    dist
}

/// Cohen's δ-pruned Dijkstra (§6.1): starting from `src`, visit a vertex
/// `u` only while `d(src, u) < delta[u]` — the tentative-distance array of
/// the incremental LE-list construction, *frozen* for the duration of the
/// search. Returns the visited `(vertex, distance)` pairs, in
/// nondecreasing distance order.
///
/// `visits` counts settled vertices, `relaxations` counts scanned edges —
/// together the search's work.
pub fn pruned_dijkstra(
    g: &CsrGraph,
    src: u32,
    delta: &[f64],
    visits: &WorkCounter,
    relaxations: &WorkCounter,
) -> Vec<(u32, f64)> {
    let mut out: Vec<(u32, f64)> = Vec::new();
    // Local tentative distances: sparse map (the search typically touches
    // O(polylog) vertices, so a dense n-array per search would dominate the
    // work bound).
    let mut local: FxHashMap<u32, f64> = FxHashMap::default();
    let mut done: FxHashMap<u32, ()> = FxHashMap::default();
    let mut heap: BinaryHeap<Reverse<(OrderedF64, u32)>> = BinaryHeap::new();
    if 0.0 < delta[src as usize] {
        local.insert(src, 0.0);
        heap.push(Reverse((OrderedF64(0.0), src)));
    }
    while let Some(Reverse((OrderedF64(d), u))) = heap.pop() {
        if done.contains_key(&u) {
            continue;
        }
        if local.get(&u).is_none_or(|&cur| d > cur) {
            continue;
        }
        done.insert(u, ());
        visits.incr();
        out.push((u, d));
        for (v, w) in g.edges(u) {
            relaxations.incr();
            let nd = d + w;
            // Prune: only pursue v while we'd beat its frozen δ.
            if nd < delta[v as usize] && local.get(&v).is_none_or(|&cur| nd < cur) {
                local.insert(v, nd);
                heap.push(Reverse((OrderedF64(nd), v)));
            }
        }
    }
    out
}

/// Reachability restricted to a partition (§6.2): vertices `u` with
/// `part[u] == part[src]` reachable from `src`, in visit order (including
/// `src`). `visits`/`relaxations` count work as in [`pruned_dijkstra`].
pub fn reachable_in_partition(
    g: &CsrGraph,
    src: u32,
    part: &[u64],
    visits: &WorkCounter,
    relaxations: &WorkCounter,
) -> Vec<u32> {
    let home = part[src as usize];
    let mut seen: FxHashMap<u32, ()> = FxHashMap::default();
    seen.insert(src, ());
    let mut stack = vec![src];
    let mut out = Vec::new();
    while let Some(u) = stack.pop() {
        visits.incr();
        out.push(u);
        for &v in g.neighbors(u) {
            relaxations.incr();
            if part[v as usize] == home && !seen.contains_key(&v) {
                seen.insert(v, ());
                stack.push(v);
            }
        }
    }
    out
}

/// Total order on f64 for the heap (no NaNs by construction: weights are
/// finite and non-negative).
#[derive(PartialEq, PartialOrd)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("no NaN distances")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{gnm, gnm_weighted, grid2d};

    #[test]
    fn bfs_simple_path() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 3), vec![INF_U32, INF_U32, INF_U32, 0]);
    }

    #[test]
    fn parallel_bfs_matches_sequential() {
        for seed in 0..3 {
            let g = gnm(500, 2000, seed, false);
            for src in [0u32, 17, 499] {
                assert_eq!(parallel_bfs_distances(&g, src), bfs_distances(&g, src));
            }
        }
        let g = grid2d(40);
        assert_eq!(parallel_bfs_distances(&g, 0), bfs_distances(&g, 0));
    }

    #[test]
    fn dijkstra_matches_bfs_on_unweighted() {
        let g = gnm(300, 1500, 4, false);
        let d = dijkstra_distances(&g, 0);
        let b = bfs_distances(&g, 0);
        for v in 0..300 {
            if b[v] == INF_U32 {
                assert!(d[v].is_infinite());
            } else {
                assert_eq!(d[v], b[v] as f64);
            }
        }
    }

    #[test]
    fn dijkstra_weighted_small() {
        let g = CsrGraph::from_weighted_edges(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            &[1.0, 4.0, 10.0, 1.0],
        );
        let d = dijkstra_distances(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn pruned_with_infinite_delta_is_full_dijkstra() {
        let g = gnm_weighted(200, 1000, 6, false);
        let delta = vec![f64::INFINITY; 200];
        let (v, r) = (WorkCounter::new(), WorkCounter::new());
        let visited = pruned_dijkstra(&g, 0, &delta, &v, &r);
        let full = dijkstra_distances(&g, 0);
        // Every finite-distance vertex is visited with the right distance.
        let mut got: Vec<(u32, f64)> = visited.clone();
        got.sort_by_key(|&(u, _)| u);
        let want: Vec<(u32, f64)> = (0..200u32)
            .filter(|&u| full[u as usize].is_finite())
            .map(|u| (u, full[u as usize]))
            .collect();
        assert_eq!(got, want);
        // Visit order is nondecreasing in distance.
        for w in visited.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(v.get() as usize, visited.len());
    }

    #[test]
    fn pruned_respects_delta() {
        // Path 0-1-2-3 with unit weights; delta cuts at distance 2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let delta = vec![f64::INFINITY, f64::INFINITY, 2.0, f64::INFINITY];
        let (v, r) = (WorkCounter::new(), WorkCounter::new());
        let visited = pruned_dijkstra(&g, 0, &delta, &v, &r);
        // Vertex 2 has d=2 which is NOT < delta[2]=2 -> pruned, and 3 is
        // unreachable through it.
        assert_eq!(visited, vec![(0, 0.0), (1, 1.0)]);
    }

    #[test]
    fn pruned_src_can_be_pruned() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let delta = vec![0.0, f64::INFINITY];
        let (v, r) = (WorkCounter::new(), WorkCounter::new());
        assert!(pruned_dijkstra(&g, 0, &delta, &v, &r).is_empty());
    }

    #[test]
    fn partition_restricted_reachability() {
        // 0 -> 1 -> 2, but 1 is in another partition: 2 unreachable.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let (v, r) = (WorkCounter::new(), WorkCounter::new());
        let part = vec![7u64, 9, 7];
        let mut reach = reachable_in_partition(&g, 0, &part, &v, &r);
        reach.sort_unstable();
        assert_eq!(reach, vec![0]);
        // Same partition: full chain.
        let part = vec![7u64, 7, 7];
        let mut reach = reachable_in_partition(&g, 0, &part, &v, &r);
        reach.sort_unstable();
        assert_eq!(reach, vec![0, 1, 2]);
    }

    #[test]
    fn reachability_counts_work() {
        let g = grid2d(10);
        let (v, r) = (WorkCounter::new(), WorkCounter::new());
        let reach = reachable_in_partition(&g, 0, &vec![0u64; 100], &v, &r);
        assert_eq!(reach.len(), 100);
        assert_eq!(v.get(), 100);
        assert_eq!(r.get() as usize, g.num_edges());
    }
}
