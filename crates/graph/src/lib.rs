//! # `ri-graph` — the graph substrate for §6 of the paper
//!
//! The Type 3 graph algorithms (LE-lists, SCC) treat single-source shortest
//! paths and reachability as black boxes with costs `W_SP/D_SP` and
//! `W_R/D_R`. This crate provides those black boxes plus everything around
//! them:
//!
//! * [`csr`] — compressed sparse row digraphs (optionally weighted) with
//!   transposition.
//! * [`generators`] — seeded synthetic graph families covering the degree /
//!   diameter / component regimes the experiments sweep.
//! * [`search`] — sequential BFS and Dijkstra, the δ-**pruned** Dijkstra
//!   that Cohen's LE-list construction needs (§6.1: *"drop the
//!   initialization of the tentative distances ... the search will only
//!   explore S and its outgoing edges"*), partition-restricted reachability
//!   for the SCC algorithm (§6.2), and a parallel frontier BFS.
//!
//! All searches report their *visit counts* through
//! [`WorkCounter`](ri_pram::WorkCounter)s so the experiments can verify the
//! `O(log n)`-factor work bounds of Theorems 6.2 and 6.4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod generators;
pub mod search;

pub use csr::CsrGraph;
pub use search::{
    bfs_distances, dijkstra_distances, parallel_bfs_distances, pruned_dijkstra,
    reachable_in_partition,
};
