//! Compressed sparse row digraphs.

/// A directed graph in CSR form; vertex ids are `u32`, edges optionally
/// carry `f64` weights (absent = unweighted = unit weights).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Option<Vec<f64>>,
}

impl CsrGraph {
    /// Build from a directed edge list. Self-loops are kept (harmless for
    /// every algorithm here); parallel edges are kept too.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        Self::build(n, edges, None)
    }

    /// Build from a weighted edge list; weights must be non-negative
    /// (shortest-path requirement).
    pub fn from_weighted_edges(n: usize, edges: &[(u32, u32)], weights: &[f64]) -> Self {
        assert_eq!(edges.len(), weights.len());
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be non-negative and finite"
        );
        Self::build(n, edges, Some(weights))
    }

    fn build(n: usize, edges: &[(u32, u32)], weights: Option<&[f64]>) -> Self {
        let mut counts = vec![0usize; n + 1];
        for &(u, _) in edges {
            assert!((u as usize) < n, "source {u} out of range");
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; edges.len()];
        let mut wout = weights.map(|_| vec![0f64; edges.len()]);
        for (idx, &(u, v)) in edges.iter().enumerate() {
            assert!((v as usize) < n, "target {v} out of range");
            let pos = cursor[u as usize];
            cursor[u as usize] += 1;
            targets[pos] = v;
            if let (Some(w), Some(ws)) = (&mut wout, weights) {
                w[pos] = ws[idx];
            }
        }
        CsrGraph {
            offsets,
            targets,
            weights: wout,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Is the graph weighted?
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: u32) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Out-neighbors of `u`.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Out-edges of `u` as `(target, weight)` (weight 1.0 if unweighted).
    pub fn edges(&self, u: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.offsets[u as usize];
        let hi = self.offsets[u as usize + 1];
        self.targets[lo..hi].iter().enumerate().map(move |(k, &v)| {
            let w = self.weights.as_ref().map_or(1.0, |ws| ws[lo + k]);
            (v, w)
        })
    }

    /// The transposed (edge-reversed) graph — needed for backward
    /// reachability in the SCC algorithm.
    pub fn transpose(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut edges = Vec::with_capacity(self.num_edges());
        let mut weights = self
            .weights
            .as_ref()
            .map(|_| Vec::with_capacity(self.num_edges()));
        for u in 0..n as u32 {
            for (k, &v) in self.neighbors(u).iter().enumerate() {
                edges.push((v, u));
                if let (Some(wout), Some(ws)) = (&mut weights, &self.weights) {
                    wout.push(ws[self.offsets[u as usize] + k]);
                }
            }
        }
        match weights {
            Some(ws) => CsrGraph::from_weighted_edges(n, &edges, &ws),
            None => CsrGraph::from_edges(n, &edges),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn basic_shape() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.degree(1), 1);
        assert!(!g.is_weighted());
    }

    #[test]
    fn multi_edges_preserved() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (0, 1), (0, 0)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.neighbors(0), &[1, 1, 0]);
    }

    #[test]
    fn weighted_edges_iterate() {
        let g = CsrGraph::from_weighted_edges(3, &[(0, 1), (0, 2)], &[2.5, 0.5]);
        let es: Vec<(u32, f64)> = g.edges(0).collect();
        assert_eq!(es, vec![(1, 2.5), (2, 0.5)]);
        assert!(g.is_weighted());
    }

    #[test]
    fn transpose_involution() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 1)]);
        let tt = g.transpose().transpose();
        // Same adjacency as the original up to per-vertex edge order.
        for u in 0..4u32 {
            let mut a = g.neighbors(u).to_vec();
            let mut b = tt.neighbors(u).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn transpose_reverses() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let t = g.transpose();
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.degree(0), 0);
    }

    #[test]
    fn transpose_keeps_weights() {
        let g = CsrGraph::from_weighted_edges(2, &[(0, 1)], &[3.25]);
        let t = g.transpose();
        let es: Vec<(u32, f64)> = t.edges(1).collect();
        assert_eq!(es, vec![(0, 3.25)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        CsrGraph::from_weighted_edges(2, &[(0, 1)], &[-1.0]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
