//! `ri-testgen`: the adversarial workload vocabulary and the Sen-style
//! tail-concentration gates over the registry problems.
//!
//! The paper's round/depth bounds are *distributional* claims — Sen 2018
//! shows RIC work and depth concentrate with high probability over the
//! random insertion order, for **any** input instance. Hostile instances
//! (Devillers' degenerate regime: cocircular/collinear point sets,
//! organ-pipe arrival orders, deep-path digraphs, tangent-degenerate
//! LPs) are therefore exactly where the claim earns its keep: the input
//! is worst-case, the randomness is only in the order, and the tail of
//! the round/special/depth distribution must still sit within budget.
//!
//! This crate owns three things:
//!
//! * the **shape vocabulary** — which `WorkloadSpec` shape names each
//!   problem accepts, split benign vs hostile. The generators themselves
//!   live below the registries (ri-geometry, ri-graph, ri-sort, ri-lp),
//!   so every shape is reachable verbatim from the `{problem, workload,
//!   config}` envelope on every surface: CLI, `/solve`, router, stream;
//! * the **tail budgets** — per-(problem, shape) p99 ceilings on round
//!   count, special-iteration count, and dependence depth as functions
//!   of `n`, calibrated with ~2× headroom over measured p100 across
//!   seeds on the committed generators (a budget trip means a
//!   *distributional* regression, not an unlucky seed);
//! * the **sweep driver** — many seeds per (problem, shape), sequential
//!   vs parallel answer equality plus the tail samples, shared by the
//!   `tailgate` test suite and the `ri-testgen sweep` binary.

use ri_core::engine::registry::{Registry, WorkloadSpec};
use ri_core::engine::{RunConfig, RunReport};

/// Number of seeds the committed tail gates sweep per (problem, shape).
pub const TAILGATE_SEEDS: u64 = 32;

/// Instance size the committed tail gates sweep at.
pub const TAILGATE_N: usize = 192;

/// The per-problem shape vocabulary: every name the registry constructor
/// accepts, split into the benign families (the theorems' habitat) and
/// the hostile ones (degenerate/structured instances and adversarial
/// arrival orders).
#[derive(Debug, Clone, Copy)]
pub struct ShapeVocabulary {
    /// Registry problem name.
    pub problem: &'static str,
    /// The shape used when a spec omits one.
    pub default_shape: &'static str,
    /// Benign families.
    pub benign: &'static [&'static str],
    /// Hostile families (the tail gates sweep exactly these).
    pub hostile: &'static [&'static str],
}

/// The full vocabulary, one entry per registered problem.
pub const VOCABULARY: [ShapeVocabulary; 9] = [
    ShapeVocabulary {
        problem: "sort",
        default_shape: "random",
        benign: &["random"],
        hostile: &["nearly-sorted", "reverse", "organ-pipe", "few-distinct"],
    },
    ShapeVocabulary {
        problem: "sort-batch",
        default_shape: "random",
        benign: &["random"],
        hostile: &["nearly-sorted", "reverse", "organ-pipe", "few-distinct"],
    },
    ShapeVocabulary {
        problem: "delaunay",
        default_shape: "uniform-square",
        benign: &[
            "uniform-square",
            "uniform-disk",
            "near-circle",
            "jittered-grid",
        ],
        hostile: &["clusters", "cocircular", "collinear", "duplicate-heavy"],
    },
    ShapeVocabulary {
        problem: "closest-pair",
        default_shape: "uniform-square",
        benign: &[
            "uniform-square",
            "uniform-disk",
            "near-circle",
            "jittered-grid",
        ],
        hostile: &["clusters", "cocircular", "collinear", "duplicate-heavy"],
    },
    ShapeVocabulary {
        problem: "enclosing",
        default_shape: "uniform-disk",
        benign: &["uniform-disk", "uniform-square", "jittered-grid"],
        hostile: &[
            "near-circle",
            "cocircular",
            "clusters",
            "collinear",
            "duplicate-heavy",
        ],
    },
    ShapeVocabulary {
        problem: "lp",
        default_shape: "tangent",
        benign: &["tangent", "shrinking"],
        hostile: &["degenerate", "near-infeasible", "infeasible"],
    },
    ShapeVocabulary {
        problem: "lp-d",
        default_shape: "tangent",
        benign: &["tangent"],
        hostile: &["degenerate"],
    },
    ShapeVocabulary {
        problem: "le-lists",
        default_shape: "gnm-weighted",
        benign: &["gnm-weighted", "gnm", "grid"],
        hostile: &["rmat", "deep-path"],
    },
    ShapeVocabulary {
        problem: "scc",
        default_shape: "gnm",
        benign: &["gnm", "planted"],
        hostile: &["dag", "rmat", "deep-path", "grid"],
    },
];

/// The vocabulary entry for `problem`, if it is a registered problem.
pub fn vocabulary(problem: &str) -> Option<&'static ShapeVocabulary> {
    VOCABULARY.iter().find(|v| v.problem == problem)
}

/// The hostile shapes of `problem` (empty for unknown problems).
pub fn hostile_shapes(problem: &str) -> &'static [&'static str] {
    vocabulary(problem).map(|v| v.hostile).unwrap_or(&[])
}

/// Every shape name `problem` accepts, benign first.
pub fn all_shapes(problem: &str) -> Vec<&'static str> {
    vocabulary(problem)
        .map(|v| v.benign.iter().chain(v.hostile).copied().collect())
        .unwrap_or_default()
}

/// p99 ceilings for one (problem, shape, n): the tail gate asserts the
/// swept p99 of each metric stays at or below these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailBudget {
    /// Parallel round count (`report.rounds.rounds()`).
    pub rounds: usize,
    /// Special-iteration count (`report.specials.len()`), the Type 2
    /// dependence chain length.
    pub specials: usize,
    /// Reported dependence depth (`report.depth`).
    pub depth: usize,
}

/// The committed p99 budget for `(problem, shape)` at instance size `n`.
///
/// Shapes whose executors round-synchronize on the *random priority
/// order* (everything except the arrival-order `sort` shapes) get
/// O(log n)-form budgets — that is Sen's concentration claim, input-
/// independent. The adversarial `sort` arrival orders pin the insertion
/// order itself, so their dependence chains are genuinely Θ(n) and the
/// budget documents that worst case exactly; `sort-batch` runs the §2.3
/// doubling schedule whose *round count* stays logarithmic for every
/// order. Constants carry ~2× headroom over the measured across-seed
/// p100 on the committed generators.
pub fn tail_budget(problem: &str, shape: &str, n: usize) -> TailBudget {
    let lg = (n.max(2) as f64).log2();
    let logn = |c: f64, b: usize| (c * lg) as usize + b;
    match problem {
        "sort" => match shape {
            // Arrival order is the adversary's: depth is the longest
            // insertion chain, Θ(n) for these orders.
            "reverse" | "nearly-sorted" => TailBudget {
                rounds: n + 2,
                specials: 0,
                depth: n + 2,
            },
            "organ-pipe" => TailBudget {
                rounds: n / 2 + 16,
                specials: 0,
                depth: n / 2 + 16,
            },
            // ~8 value classes of ~n/8 arrival-ordered keys each.
            "few-distinct" => TailBudget {
                rounds: n / 4 + 32,
                specials: 0,
                depth: n / 4 + 32,
            },
            _ => TailBudget {
                rounds: logn(6.0, 8),
                specials: 0,
                depth: logn(6.0, 8),
            },
        },
        // The doubling schedule's round count is O(log n) for any order.
        "sort-batch" => TailBudget {
            rounds: logn(2.0, 6),
            specials: 0,
            depth: logn(2.0, 6),
        },
        "delaunay" => TailBudget {
            rounds: logn(8.0, 12),
            specials: 0,
            depth: logn(8.0, 12),
        },
        "closest-pair" => TailBudget {
            rounds: logn(2.0, 6),
            specials: logn(4.0, 8),
            depth: logn(5.0, 12),
        },
        "enclosing" => TailBudget {
            rounds: logn(2.0, 6),
            specials: logn(5.0, 10),
            depth: logn(6.0, 12),
        },
        // The `shrinking` family drives the longest special chains.
        "lp" => TailBudget {
            rounds: logn(2.0, 6),
            specials: logn(7.0, 12),
            depth: logn(8.0, 16),
        },
        "lp-d" => TailBudget {
            rounds: logn(2.0, 6),
            specials: logn(5.0, 10),
            depth: logn(6.0, 12),
        },
        "le-lists" | "scc" => TailBudget {
            rounds: logn(2.0, 6),
            specials: 0,
            depth: logn(2.0, 6),
        },
        _ => TailBudget {
            rounds: usize::MAX,
            specials: usize::MAX,
            depth: usize::MAX,
        },
    }
}

/// One seed's parallel-run tail metrics.
#[derive(Debug, Clone, Copy)]
pub struct TailSample {
    /// Workload seed of this run.
    pub seed: u64,
    /// Parallel round count.
    pub rounds: usize,
    /// Special-iteration count.
    pub specials: usize,
    /// Reported dependence depth.
    pub depth: usize,
}

impl TailSample {
    /// Extract the gated metrics from a parallel run's report.
    pub fn from_report(seed: u64, report: &RunReport) -> TailSample {
        TailSample {
            seed,
            rounds: report.rounds.rounds(),
            specials: report.specials.len(),
            depth: report.depth,
        }
    }
}

/// The result of sweeping one (problem, shape) across seeds.
#[derive(Debug, Clone)]
pub struct ShapeSweep {
    /// Registry problem name.
    pub problem: String,
    /// Shape name swept.
    pub shape: String,
    /// Instance size.
    pub n: usize,
    /// One sample per seed, from the parallel run.
    pub samples: Vec<TailSample>,
    /// Seeds whose sequential and parallel answers diverged (must stay
    /// empty: answers are mode-invariant by construction).
    pub mismatches: Vec<u64>,
}

impl ShapeSweep {
    fn p99_of(&self, metric: impl Fn(&TailSample) -> usize) -> usize {
        let mut xs: Vec<usize> = self.samples.iter().map(metric).collect();
        xs.sort_unstable();
        percentile(&xs, 0.99)
    }

    /// p99 round count across the swept seeds.
    pub fn p99_rounds(&self) -> usize {
        self.p99_of(|s| s.rounds)
    }

    /// p99 special-iteration count.
    pub fn p99_specials(&self) -> usize {
        self.p99_of(|s| s.specials)
    }

    /// p99 dependence depth.
    pub fn p99_depth(&self) -> usize {
        self.p99_of(|s| s.depth)
    }

    /// Check this sweep against `budget`: answer equality on every seed
    /// and every p99 within its ceiling. Returns every violation, so a
    /// gate failure names all regressed metrics at once.
    pub fn gate(&self, budget: &TailBudget) -> Result<(), Vec<String>> {
        let tag = format!("{}/{} n={}", self.problem, self.shape, self.n);
        let mut violations = Vec::new();
        if !self.mismatches.is_empty() {
            violations.push(format!(
                "{tag}: seq/par answers diverged at seeds {:?}",
                self.mismatches
            ));
        }
        for (name, got, cap) in [
            ("p99 rounds", self.p99_rounds(), budget.rounds),
            ("p99 specials", self.p99_specials(), budget.specials),
            ("p99 depth", self.p99_depth(), budget.depth),
        ] {
            if got > cap {
                violations.push(format!("{tag}: {name} {got} > budget {cap}"));
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

/// The `q`-th percentile (0 ≤ q ≤ 1) of an ascending-sorted slice, by
/// the nearest-rank method; 0 for an empty slice.
pub fn percentile(sorted: &[usize], q: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Sweep one (problem, shape): for each seed in `seeds`, solve the spec
/// sequentially and in parallel (each run's config seed varies with the
/// workload seed, so the random priority order is resampled), record the
/// parallel tail metrics, and compare the mode-invariant answer
/// sections. Errors if any construction or solve fails.
pub fn sweep_shape(
    reg: &Registry,
    problem: &str,
    shape: &str,
    n: usize,
    seeds: std::ops::Range<u64>,
    threads: usize,
) -> Result<ShapeSweep, String> {
    let mut samples = Vec::with_capacity(seeds.end.saturating_sub(seeds.start) as usize);
    let mut mismatches = Vec::new();
    for seed in seeds {
        let spec = WorkloadSpec::new(n, seed).shape(shape);
        let cseed = seed.wrapping_add(0x7a11);
        let seq_cfg = RunConfig::new().seed(cseed).sequential();
        let par_cfg = RunConfig::new().seed(cseed).parallel().threads(threads);
        let (seq, _) = reg
            .solve(problem, &spec, &seq_cfg)
            .map_err(|e| format!("{problem}/{shape} seed {seed} (seq): {e}"))?;
        let (par, report) = reg
            .solve(problem, &spec, &par_cfg)
            .map_err(|e| format!("{problem}/{shape} seed {seed} (par): {e}"))?;
        if seq.answer() != par.answer() {
            mismatches.push(seed);
        }
        samples.push(TailSample::from_report(seed, &report));
    }
    Ok(ShapeSweep {
        problem: problem.to_string(),
        shape: shape.to_string(),
        n,
        samples,
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_is_well_formed() {
        for v in &VOCABULARY {
            assert!(
                v.benign.contains(&v.default_shape),
                "{}: default shape must be benign",
                v.problem
            );
            assert!(!v.hostile.is_empty(), "{}: no hostile shapes", v.problem);
            let mut all = all_shapes(v.problem);
            let total = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), total, "{}: duplicate shape name", v.problem);
        }
    }

    #[test]
    fn vocabulary_matches_the_registry() {
        let reg = parallel_ri::registry();
        let mut names = reg.names();
        names.sort_unstable();
        let mut ours: Vec<&str> = VOCABULARY.iter().map(|v| v.problem).collect();
        ours.sort_unstable();
        assert_eq!(names, ours, "vocabulary drifted from the registry");
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<usize> = (1..=100).collect();
        assert_eq!(percentile(&xs, 0.99), 99);
        assert_eq!(percentile(&xs, 1.0), 100);
        assert_eq!(percentile(&xs, 0.5), 50);
        assert_eq!(percentile(&[7], 0.99), 7);
        assert_eq!(percentile(&[], 0.99), 0);
    }

    #[test]
    fn budgets_are_finite_for_every_known_pair() {
        for v in &VOCABULARY {
            for shape in all_shapes(v.problem) {
                let b = tail_budget(v.problem, shape, TAILGATE_N);
                assert!(b.rounds < usize::MAX, "{}/{shape}", v.problem);
                assert!(b.depth < usize::MAX, "{}/{shape}", v.problem);
            }
        }
        assert_eq!(tail_budget("nope", "x", 64).rounds, usize::MAX);
    }

    #[test]
    fn sweep_detects_clean_runs() {
        let reg = parallel_ri::registry();
        let sweep = sweep_shape(&reg, "sort", "reverse", 64, 0..4, 2).unwrap();
        assert_eq!(sweep.samples.len(), 4);
        assert!(sweep.mismatches.is_empty());
        let budget = tail_budget("sort", "reverse", 64);
        sweep.gate(&budget).unwrap();
        // A zero budget must trip.
        let zero = TailBudget {
            rounds: 0,
            specials: 0,
            depth: 0,
        };
        assert!(sweep.gate(&zero).is_err());
    }
}
