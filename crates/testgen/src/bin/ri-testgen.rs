//! `ri-testgen` — list the adversarial shape vocabulary or sweep the
//! tail-concentration gates and write a bench artifact.
//!
//! ```text
//! ri-testgen list
//! ri-testgen sweep [--n N] [--seeds S] [--threads T]
//!                  [--problems a,b] [--shapes x,y] [--all-shapes]
//!                  [--gate] [--out PATH]
//! ```
//!
//! `sweep` runs every (problem, hostile shape) pair — or the filtered
//! set — across `S` seeds, sequential vs parallel, and reports the p99 /
//! max of round count, special-iteration count, and dependence depth
//! next to the committed [`ri_testgen::tail_budget`]. With `--gate` the
//! process exits 1 on any budget violation or answer mismatch (the CI
//! tail-gate step); `--out` writes the full JSON artifact.

use std::process::ExitCode;

use ri_core::engine::json::Value;
use ri_testgen::{
    all_shapes, sweep_shape, tail_budget, ShapeSweep, TailBudget, TAILGATE_N, TAILGATE_SEEDS,
    VOCABULARY,
};

struct Args {
    n: usize,
    seeds: u64,
    threads: usize,
    problems: Option<Vec<String>>,
    shapes: Option<Vec<String>>,
    all_shapes: bool,
    gate: bool,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ri-testgen list\n       ri-testgen sweep [--n N] [--seeds S] [--threads T] \
         [--problems a,b] [--shapes x,y] [--all-shapes] [--gate] [--out PATH]"
    );
    std::process::exit(2)
}

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args {
        n: TAILGATE_N,
        seeds: TAILGATE_SEEDS,
        threads: 2,
        problems: None,
        shapes: None,
        all_shapes: false,
        gate: false,
        out: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    usage()
                })
                .clone()
        };
        match flag.as_str() {
            "--n" => parsed.n = value("--n").parse().unwrap_or_else(|_| usage()),
            "--seeds" => parsed.seeds = value("--seeds").parse().unwrap_or_else(|_| usage()),
            "--threads" => parsed.threads = value("--threads").parse().unwrap_or_else(|_| usage()),
            "--problems" => {
                parsed.problems = Some(value("--problems").split(',').map(str::to_string).collect())
            }
            "--shapes" => {
                parsed.shapes = Some(value("--shapes").split(',').map(str::to_string).collect())
            }
            "--all-shapes" => parsed.all_shapes = true,
            "--gate" => parsed.gate = true,
            "--out" => parsed.out = Some(value("--out")),
            _ => usage(),
        }
    }
    parsed
}

fn list() {
    for v in &VOCABULARY {
        println!(
            "{:<12} default={:<14} benign=[{}] hostile=[{}]",
            v.problem,
            v.default_shape,
            v.benign.join(", "),
            v.hostile.join(", ")
        );
    }
}

fn sweep_to_value(sweep: &ShapeSweep, budget: &TailBudget, violations: &[String]) -> Value {
    let max_of = |metric: fn(&ri_testgen::TailSample) -> usize| {
        sweep.samples.iter().map(metric).max().unwrap_or(0) as f64
    };
    Value::Obj(vec![
        ("problem".into(), Value::Str(sweep.problem.clone())),
        ("shape".into(), Value::Str(sweep.shape.clone())),
        ("n".into(), Value::Num(sweep.n as f64)),
        ("seeds".into(), Value::Num(sweep.samples.len() as f64)),
        ("p99_rounds".into(), Value::Num(sweep.p99_rounds() as f64)),
        (
            "p99_specials".into(),
            Value::Num(sweep.p99_specials() as f64),
        ),
        ("p99_depth".into(), Value::Num(sweep.p99_depth() as f64)),
        ("max_rounds".into(), Value::Num(max_of(|s| s.rounds))),
        ("max_specials".into(), Value::Num(max_of(|s| s.specials))),
        ("max_depth".into(), Value::Num(max_of(|s| s.depth))),
        ("budget_rounds".into(), Value::Num(budget.rounds as f64)),
        ("budget_specials".into(), Value::Num(budget.specials as f64)),
        ("budget_depth".into(), Value::Num(budget.depth as f64)),
        (
            "answers_match".into(),
            Value::Bool(sweep.mismatches.is_empty()),
        ),
        ("ok".into(), Value::Bool(violations.is_empty())),
        (
            "violations".into(),
            Value::Arr(violations.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ])
}

fn sweep(args: &Args) -> ExitCode {
    let reg = parallel_ri::registry();
    let mut results = Vec::new();
    let mut all_ok = true;
    for v in &VOCABULARY {
        if let Some(filter) = &args.problems {
            if !filter.iter().any(|p| p == v.problem) {
                continue;
            }
        }
        let shapes: Vec<&str> = if args.all_shapes {
            all_shapes(v.problem)
        } else {
            v.hostile.to_vec()
        };
        for shape in shapes {
            if let Some(filter) = &args.shapes {
                if !filter.iter().any(|s| s == shape) {
                    continue;
                }
            }
            let sweep =
                match sweep_shape(&reg, v.problem, shape, args.n, 0..args.seeds, args.threads) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("sweep failed: {e}");
                        return ExitCode::from(1);
                    }
                };
            let budget = tail_budget(v.problem, shape, args.n);
            let violations = sweep.gate(&budget).err().unwrap_or_default();
            println!(
                "{:<12} {:<16} p99 rounds {:>5}/{:<5} specials {:>4}/{:<4} depth {:>5}/{:<5} {}",
                sweep.problem,
                sweep.shape,
                sweep.p99_rounds(),
                budget.rounds,
                sweep.p99_specials(),
                budget.specials,
                sweep.p99_depth(),
                budget.depth,
                if violations.is_empty() { "ok" } else { "FAIL" }
            );
            for violation in &violations {
                eprintln!("  {violation}");
            }
            all_ok &= violations.is_empty();
            results.push(sweep_to_value(&sweep, &budget, &violations));
        }
    }
    if let Some(out) = &args.out {
        let doc = Value::Obj(vec![
            ("bench".into(), Value::Str("testgen-tailgate".into())),
            ("n".into(), Value::Num(args.n as f64)),
            ("seeds".into(), Value::Num(args.seeds as f64)),
            ("threads".into(), Value::Num(args.threads as f64)),
            ("ok".into(), Value::Bool(all_ok)),
            ("results".into(), Value::Arr(results)),
        ]);
        if let Err(e) = std::fs::write(out, doc.write() + "\n") {
            eprintln!("writing {out}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote {out}");
    }
    if args.gate && !all_ok {
        eprintln!("tail gate FAILED");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("list") => {
            if argv.len() > 1 {
                usage();
            }
            list();
            ExitCode::SUCCESS
        }
        Some("sweep") => sweep(&parse_args(&argv[1..])),
        _ => usage(),
    }
}
