//! Unknown workload shapes are *typed* errors, never silent defaults,
//! and the bad-workload envelope is identical on every surface.
//!
//! Three layers of teeth:
//!
//! * deterministic: every registered problem rejects a nonsense shape
//!   name as [`RegistryError::BadWorkload`] through both the one-shot
//!   and (where present) the streaming constructor;
//! * property-based: *any* shape string outside the problem's
//!   vocabulary is rejected and never panics the constructor;
//! * cross-surface: the direct `/solve` error body, the routed error
//!   body, and `ServeError::from` of the in-process registry error are
//!   the same structured envelope (`kind: bad-workload`, HTTP 400) —
//!   the CLI, server, and router can never disagree about what a bad
//!   workload looks like. Non-finite `param` (the `1e999` overflow
//!   literal) rides the same path.

use std::time::Duration;

use proptest::prelude::*;
use ri_core::engine::envelope::{ServeError, ServeErrorKind};
use ri_core::engine::registry::RegistryError;
use ri_core::engine::{RunConfig, ServeRequest, WorkloadSpec};
use ri_router::{BackendSpec, BackendTarget, Router, RouterConfig};
use ri_serve::http::ClientConn;
use ri_serve::{ServeConfig, Server};
use ri_testgen::{all_shapes, VOCABULARY};

/// Assert `err` is the BadWorkload variant for `problem`.
fn assert_bad_workload(problem: &str, err: &RegistryError, context: &str) {
    match err {
        RegistryError::BadWorkload { name, message } => {
            assert_eq!(name, problem, "{context}");
            assert!(!message.is_empty(), "{context}: empty message");
        }
        other => panic!("{context}: expected BadWorkload, got {other}"),
    }
}

#[test]
fn every_problem_rejects_unknown_shapes_with_a_typed_error() {
    let reg = parallel_ri::registry();
    let cfg = RunConfig::new();
    for v in VOCABULARY {
        let bad = WorkloadSpec::new(64, 1).shape("definitely-not-a-shape");
        let err = reg
            .solve(v.problem, &bad, &cfg)
            .err()
            .unwrap_or_else(|| panic!("{}: bad shape solved", v.problem));
        assert_bad_workload(v.problem, &err, &format!("{} solve", v.problem));
        if reg.has_incremental(v.problem) {
            let err = match reg.construct_incremental(v.problem, &bad) {
                Err(e) => e,
                Ok(_) => panic!("{}: bad shape accepted by the stream ctor", v.problem),
            };
            assert_bad_workload(v.problem, &err, &format!("{} stream", v.problem));
        }
        // And every *known* shape constructs — the vocabulary is the
        // exact acceptance set, in both directions.
        for shape in all_shapes(v.problem) {
            let good = WorkloadSpec::new(64, 1).shape(shape);
            reg.construct(v.problem, &good)
                .unwrap_or_else(|e| panic!("{}/{shape}: {e}", v.problem));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any shape string outside the vocabulary is a typed rejection on
    /// every problem — no constructor panics, none silently falls back
    /// to its default family.
    #[test]
    fn arbitrary_unknown_shapes_are_rejected(raw in proptest::collection::vec(any::<u8>(), 1..24)) {
        const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 _-";
        let shape: String = raw
            .iter()
            .map(|&b| CHARSET[b as usize % CHARSET.len()] as char)
            .collect();
        let reg = parallel_ri::registry();
        let cfg = RunConfig::new();
        for v in VOCABULARY {
            prop_assume!(!all_shapes(v.problem).contains(&shape.as_str()));
            let spec = WorkloadSpec::new(48, 2).shape(&shape);
            let err = reg
                .solve(v.problem, &spec, &cfg)
                .err()
                .unwrap_or_else(|| panic!("{}: `{shape}` solved", v.problem));
            assert_bad_workload(v.problem, &err, &format!("{}/`{shape}`", v.problem));
        }
    }
}

/// POST `body` to `/solve` on `addr`-like target and return (status,
/// parsed error envelope).
fn post_solve(conn: &mut ClientConn, body: &str) -> (u16, ServeError) {
    let resp = conn
        .request("POST", "/solve", Some(body))
        .expect("request completes");
    let err = ServeError::from_json(&resp.body)
        .unwrap_or_else(|e| panic!("body is not an error envelope ({e}): {}", resp.body));
    (resp.status, err)
}

#[test]
fn bad_workloads_produce_the_same_envelope_on_every_surface() {
    let reg = parallel_ri::registry();
    let backend = Server::start(
        parallel_ri::registry(),
        ServeConfig {
            threads: 2,
            executors: 2,
            ..ServeConfig::default()
        },
    )
    .expect("backend starts");
    let router = Router::start(
        RouterConfig::default(),
        vec![BackendSpec {
            shard_id: "s0".into(),
            target: BackendTarget::Attach(backend.local_addr()),
        }],
    )
    .expect("router starts");
    let mut direct = ClientConn::new(backend.local_addr(), Duration::from_secs(60));
    let mut routed = ClientConn::new(router.local_addr(), Duration::from_secs(60));

    for v in VOCABULARY {
        // The in-process truth: what the registry error maps to.
        let bad = WorkloadSpec::new(64, 1).shape("definitely-not-a-shape");
        let registry_err = reg.solve(v.problem, &bad, &RunConfig::new()).unwrap_err();
        let expected = ServeError::from(registry_err);
        assert_eq!(expected.kind, ServeErrorKind::BadWorkload, "{}", v.problem);

        let mut request = ServeRequest::new(v.problem);
        request.workload = bad;
        request.config = RunConfig::new().seed(3).parallel();
        let body = request.to_json();

        let (direct_status, direct_err) = post_solve(&mut direct, &body);
        assert_eq!(direct_status, 400, "{} direct", v.problem);
        assert_eq!(direct_err, expected, "{} direct envelope", v.problem);

        let (routed_status, routed_err) = post_solve(&mut routed, &body);
        assert_eq!(routed_status, 400, "{} routed", v.problem);
        assert_eq!(routed_err, expected, "{} routed envelope", v.problem);
    }

    // Non-finite param: the overflow literal `1e999` parses to infinity
    // and must be shed as the same structured bad-workload on both
    // surfaces, not a panic in a generator.
    for v in VOCABULARY {
        let body = format!(
            "{{\"problem\":\"{}\",\"workload\":{{\"n\":64,\"seed\":1,\"param\":1e999}}}}",
            v.problem
        );
        for (surface, conn) in [("direct", &mut direct), ("routed", &mut routed)] {
            let (status, err) = post_solve(conn, &body);
            assert_eq!(status, 400, "{} {surface}", v.problem);
            assert_eq!(
                err.kind,
                ServeErrorKind::BadWorkload,
                "{} {surface}: {}",
                v.problem,
                err.message
            );
            assert!(
                err.message.contains("not finite"),
                "{} {surface}: {}",
                v.problem,
                err.message
            );
        }
    }

    router.shutdown();
    backend.shutdown();
}
