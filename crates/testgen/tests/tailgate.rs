//! The committed tail-concentration gates: every hostile shape of every
//! registered problem, swept across [`TAILGATE_SEEDS`] seeds at
//! [`TAILGATE_N`], must keep its p99 round count / special-iteration
//! count / dependence depth within [`tail_budget`] AND produce identical
//! sequential/parallel answers on every seed.
//!
//! This is the Sen-style claim under test: the input is adversarial
//! (degenerate geometry, hostile arrival orders, deep digraphs), only
//! the insertion order / priority randomness varies with the seed, and
//! the tail of the work/depth distribution must still concentrate. A
//! trip here means a *distributional* regression — or, for answer
//! mismatches, a mode-variance bug — not an unlucky seed: all sweeps
//! are fully seeded and deterministic.
//!
//! One `#[test]` per problem so a regression names its problem directly
//! and the sweeps run in parallel under the default harness.

use ri_testgen::{sweep_shape, tail_budget, vocabulary, TAILGATE_N, TAILGATE_SEEDS};

/// Sweep every hostile shape of `problem` and assert the gate.
fn gate_problem(problem: &str) {
    let reg = parallel_ri::registry();
    let vocab = vocabulary(problem).expect("unknown problem in tailgate");
    let mut violations = Vec::new();
    for shape in vocab.hostile {
        let sweep = sweep_shape(&reg, problem, shape, TAILGATE_N, 0..TAILGATE_SEEDS, 2)
            .unwrap_or_else(|e| panic!("{problem}/{shape}: sweep failed: {e}"));
        assert_eq!(
            sweep.samples.len(),
            TAILGATE_SEEDS as usize,
            "{problem}/{shape}: wrong seed count"
        );
        if let Err(mut v) = sweep.gate(&tail_budget(problem, shape, TAILGATE_N)) {
            violations.append(&mut v);
        }
    }
    assert!(violations.is_empty(), "{}", violations.join("\n"));
}

#[test]
fn sort_hostile_tails_concentrate() {
    gate_problem("sort");
}

#[test]
fn sort_batch_hostile_tails_concentrate() {
    gate_problem("sort-batch");
}

#[test]
fn delaunay_hostile_tails_concentrate() {
    gate_problem("delaunay");
}

#[test]
fn closest_pair_hostile_tails_concentrate() {
    gate_problem("closest-pair");
}

#[test]
fn enclosing_hostile_tails_concentrate() {
    gate_problem("enclosing");
}

#[test]
fn lp_hostile_tails_concentrate() {
    gate_problem("lp");
}

#[test]
fn lp_d_hostile_tails_concentrate() {
    gate_problem("lp-d");
}

#[test]
fn le_lists_hostile_tails_concentrate() {
    gate_problem("le-lists");
}

#[test]
fn scc_hostile_tails_concentrate() {
    gate_problem("scc");
}

/// The benign default shapes must pass their budgets too — the gate is
/// not allowed to be a hostile-only special case.
#[test]
fn default_shapes_pass_their_budgets() {
    let reg = parallel_ri::registry();
    for v in ri_testgen::VOCABULARY {
        let sweep = sweep_shape(
            &reg,
            v.problem,
            v.default_shape,
            TAILGATE_N,
            0..TAILGATE_SEEDS,
            2,
        )
        .unwrap_or_else(|e| panic!("{}/{}: sweep failed: {e}", v.problem, v.default_shape));
        sweep
            .gate(&tail_budget(v.problem, v.default_shape, TAILGATE_N))
            .unwrap_or_else(|v| panic!("{}", v.join("\n")));
    }
}
