//! Property tests: all three sort implementations agree with `std` sorting
//! and with each other (same tree ⇒ Theorem 3.2), for arbitrary distinct
//! key sets and arbitrary insertion orders.

use proptest::prelude::*;
use ri_sort::{batch_bst_sort, parallel_bst_sort, sequential_bst_sort};

fn distinct_keys() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::hash_set(any::<i64>(), 0..500)
        .prop_map(|s| s.into_iter().collect::<Vec<i64>>())
}

proptest! {
    #[test]
    fn sequential_sorts(keys in distinct_keys()) {
        let r = sequential_bst_sort(&keys);
        let got: Vec<i64> = r.sorted_indices.iter().map(|&i| keys[i]).collect();
        let mut want = keys.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert!(r.tree.is_search_tree(&keys) || keys.is_empty());
    }

    #[test]
    fn parallel_equals_sequential(keys in distinct_keys()) {
        let seq = sequential_bst_sort(&keys);
        let par = parallel_bst_sort(&keys);
        prop_assert_eq!(&par.tree, &seq.tree);
        prop_assert_eq!(par.comparisons, seq.comparisons);
        prop_assert_eq!(par.sorted_indices, seq.sorted_indices);
    }

    #[test]
    fn batch_equals_sequential(keys in distinct_keys()) {
        let seq = sequential_bst_sort(&keys);
        let batch = batch_bst_sort(&keys);
        prop_assert_eq!(&batch.tree, &seq.tree);
        prop_assert_eq!(batch.sorted_indices, seq.sorted_indices);
        // Batch never does fewer comparisons than sequential.
        prop_assert!(batch.comparisons >= seq.comparisons);
    }

    #[test]
    fn parallel_rounds_equal_tree_height(keys in distinct_keys()) {
        let par = parallel_bst_sort(&keys);
        prop_assert_eq!(par.log.rounds(), par.tree.dependence_depth());
    }
}
