//! Property tests: all three sort implementations agree with `std` sorting
//! and with each other (same tree ⇒ Theorem 3.2), for arbitrary distinct
//! key sets and arbitrary insertion orders.

use proptest::prelude::*;
use ri_core::engine::{Problem, RunConfig};
use ri_sort::{BatchSortProblem, SortProblem};

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

fn distinct_keys() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::hash_set(any::<i64>(), 0..500)
        .prop_map(|s| s.into_iter().collect::<Vec<i64>>())
}

proptest! {
    #[test]
    fn sequential_sorts(keys in distinct_keys()) {
        let (r, _) = SortProblem::new(&keys).solve(&seq_cfg());
        let got: Vec<i64> = r.sorted_indices.iter().map(|&i| keys[i]).collect();
        let mut want = keys.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        prop_assert!(r.tree.is_search_tree(&keys) || keys.is_empty());
    }

    #[test]
    fn parallel_equals_sequential(keys in distinct_keys()) {
        let (seq, _) = SortProblem::new(&keys).solve(&seq_cfg());
        let (par, _) = SortProblem::new(&keys).solve(&par_cfg());
        prop_assert_eq!(&par.tree, &seq.tree);
        prop_assert_eq!(par.comparisons, seq.comparisons);
        prop_assert_eq!(par.sorted_indices, seq.sorted_indices);
    }

    #[test]
    fn batch_equals_sequential(keys in distinct_keys()) {
        let (seq, _) = SortProblem::new(&keys).solve(&seq_cfg());
        let (batch, _) = BatchSortProblem::new(&keys).solve(&par_cfg());
        prop_assert_eq!(&batch.tree, &seq.tree);
        prop_assert_eq!(batch.sorted_indices, seq.sorted_indices);
        // Batch never does fewer comparisons than sequential.
        prop_assert!(batch.comparisons >= seq.comparisons);
    }

    #[test]
    fn parallel_rounds_equal_tree_height(keys in distinct_keys()) {
        let (par, report) = SortProblem::new(&keys).solve(&par_cfg());
        prop_assert_eq!(report.depth, par.tree.dependence_depth());
    }
}
