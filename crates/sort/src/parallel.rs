//! Algorithm 3: the parallel incremental sort with priority-writes.
//!
//! All outstanding keys advance one tree level per round. Each round has
//! three synchronous phases, reproducing the priority-write CRCW PRAM step
//! semantics on shared memory:
//!
//! 1. **snapshot** — every active key reads its current slot;
//! 2. **write** — keys whose slot was empty priority-write their iteration
//!    index (`fetch_min`);
//! 3. **resolve** — every active key re-reads the slot: the winner is
//!    placed, everyone else descends one level past the slot's (now fixed)
//!    occupant.
//!
//! Because writes happen only in phase 2 and the minimum iteration index
//! wins, the constructed tree is **identical** to the sequential one
//! (Theorem 3.2), and the number of rounds equals the iteration dependence
//! depth (each round retires exactly one level of the dependence DAG).
//!
//! ## Grain control: the fused inline round
//!
//! When a round runs entirely on the calling thread **in iteration
//! order** — which the engine's grain policy chooses for every round at
//! width 1 and for the long tail of small rounds at any width — the three
//! phases fuse into a *single* pass with in-place compaction: the first
//! key to see an empty slot is the minimum-index key pointing at it (the
//! active list is always sorted by iteration index), so it wins exactly
//! the priority-write, and every later key reads the winner as its
//! occupant exactly as the resolve phase would. Same winners, same
//! descents, same comparison counts, same per-round placement — but one
//! pass instead of three and zero per-round allocation, which is what
//! brings parallel-mode-at-1-thread within a whisker of the sequential
//! loop. The concurrent (multi-thread) path keeps the phase separation
//! (a fused check-and-write is racy about *which* key wins) and instead
//! reuses its snapshot/survivor buffers through the scratch arena.

use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

use crate::tree::{Bst, NONE};
use ri_core::engine::{grain, scratch};
use ri_pram::RoundLog;

/// Output of the parallel sort.
#[derive(Debug)]
pub struct ParSortResult {
    /// The constructed search tree — equal to the sequential tree.
    pub tree: Bst,
    /// Iteration indices in key-sorted order.
    pub sorted_indices: Vec<usize>,
    /// Total key comparisons across all rounds.
    pub comparisons: u64,
    /// Per-round log; `log.rounds()` = iteration dependence depth.
    pub log: RoundLog,
}

/// Where an outstanding key currently points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cursor {
    Root,
    Left(u64),
    Right(u64),
}

/// Sort by parallel BST insertion (Algorithm 3). Keys must be distinct.
pub(crate) fn parallel_bst_sort_impl<T: Ord + Sync>(keys: &[T]) -> ParSortResult {
    let n = keys.len();
    let root = AtomicU64::new(NONE);
    let left: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NONE)).collect();
    let right: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NONE)).collect();

    let slot_of = |c: Cursor| -> &AtomicU64 {
        match c {
            Cursor::Root => &root,
            Cursor::Left(v) => &left[v as usize],
            Cursor::Right(v) => &right[v as usize],
        }
    };

    // The active list, its successor, and the snapshot buffer all come
    // from (and return to) the engine's scratch arena: rounds reallocate
    // nothing, repeated runs on one thread reuse capacity.
    let mut active: Vec<(usize, Cursor)> = scratch::take_vec();
    active.extend((0..n).map(|i| (i, Cursor::Root)));
    let mut next: Vec<(usize, Cursor)> = scratch::take_vec();
    let mut snapshot: Vec<u64> = scratch::take_vec();
    let mut log = RoundLog::new();
    let comparisons = ri_pram::WorkCounter::new();

    while !active.is_empty() {
        let round_items = active.len();
        if !grain::parallel_round(round_items) {
            // Fused inline round (single thread, iteration order): see the
            // module docs for why this is phase-equivalent. Winners retire
            // in place; losers are compacted forward with a write cursor.
            let mut kept = 0usize;
            let mut round_comparisons = 0u64;
            for r in 0..round_items {
                let (i, c) = active[r];
                let slot = slot_of(c);
                let occupant = slot.load(Ordering::Acquire);
                if occupant == NONE {
                    // In-order processing: i is the minimum active index
                    // pointing at this slot, i.e. the priority-write winner.
                    slot.store(i as u64, Ordering::Release);
                } else {
                    round_comparisons += 1;
                    let next_cursor = if keys[i] < keys[occupant as usize] {
                        Cursor::Left(occupant)
                    } else {
                        Cursor::Right(occupant)
                    };
                    active[kept] = (i, next_cursor);
                    kept += 1;
                }
            }
            comparisons.add(round_comparisons);
            active.truncate(kept);
        } else {
            let chunk = round_items.div_ceil(rayon::recommended_splits());

            // Phase 1: snapshot each active key's slot (into the reused
            // buffer, chunk-aligned with the active list).
            snapshot.clear();
            snapshot.resize(round_items, 0);
            snapshot
                .par_chunks_mut(chunk)
                .zip(active.par_chunks(chunk))
                .for_each(|(ss, aa)| {
                    for (s, &(_, c)) in ss.iter_mut().zip(aa) {
                        *s = slot_of(c).load(Ordering::Acquire);
                    }
                });

            // Phase 2: keys that saw an empty slot priority-write their
            // index.
            active
                .par_iter()
                .zip(snapshot.par_iter())
                .for_each(|(&(i, c), &seen)| {
                    if seen == NONE {
                        slot_of(c).fetch_min(i as u64, Ordering::AcqRel);
                    }
                });

            // Phase 3: resolve — winners retire, losers descend one level.
            // Survivors compact per chunk, then drain into the reused
            // `next` buffer in order.
            let parts: Vec<Vec<(usize, Cursor)>> = active
                .par_chunks(chunk)
                .map(|aa| {
                    aa.iter()
                        .filter_map(|&(i, c)| {
                            let occupant = slot_of(c).load(Ordering::Acquire);
                            debug_assert_ne!(
                                occupant, NONE,
                                "write phase must have filled the slot"
                            );
                            if occupant == i as u64 {
                                return None; // placed
                            }
                            comparisons.incr();
                            let next_cursor = if keys[i] < keys[occupant as usize] {
                                Cursor::Left(occupant)
                            } else {
                                Cursor::Right(occupant)
                            };
                            Some((i, next_cursor))
                        })
                        .collect()
                })
                .collect();
            next.clear();
            for p in parts {
                next.extend(p);
            }
            std::mem::swap(&mut active, &mut next);
        }
        log.record(round_items, (round_items - active.len()) as u64);
    }
    scratch::put_vec(active);
    scratch::put_vec(next);
    scratch::put_vec(snapshot);

    let tree = Bst {
        root: root.into_inner(),
        left: left.into_iter().map(|a| a.into_inner()).collect(),
        right: right.into_iter().map(|a| a.into_inner()).collect(),
    };
    let sorted_indices = tree.in_order_par();
    ParSortResult {
        tree,
        sorted_indices,
        comparisons: comparisons.get(),
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::sequential_bst_sort_impl;
    use ri_pram::random_permutation;

    #[test]
    fn sorts_correctly() {
        let keys: Vec<usize> = random_permutation(10_000, 1);
        let r = parallel_bst_sort_impl(&keys);
        let got: Vec<usize> = r.sorted_indices.iter().map(|&i| keys[i]).collect();
        assert_eq!(got, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn tree_identical_to_sequential() {
        for seed in 0..5 {
            let keys = random_permutation(2000, seed);
            let par = parallel_bst_sort_impl(&keys);
            let seq = sequential_bst_sort_impl(&keys);
            assert_eq!(par.tree, seq.tree, "Theorem 3.2 violated at seed {seed}");
        }
    }

    #[test]
    fn comparisons_match_sequential() {
        let keys = random_permutation(5000, 9);
        let par = parallel_bst_sort_impl(&keys);
        let seq = sequential_bst_sort_impl(&keys);
        assert_eq!(par.comparisons, seq.comparisons);
    }

    #[test]
    fn rounds_equal_dependence_depth() {
        let keys = random_permutation(5000, 4);
        let r = parallel_bst_sort_impl(&keys);
        assert_eq!(r.log.rounds(), r.tree.dependence_depth());
    }

    #[test]
    fn rounds_logarithmic_for_random_order() {
        let n = 1 << 15;
        let keys = random_permutation(n, 2);
        let r = parallel_bst_sort_impl(&keys);
        assert!(
            r.log.rounds() < 6 * 15,
            "rounds {} not O(log n)",
            r.log.rounds()
        );
    }

    #[test]
    fn empty_and_single() {
        let r = parallel_bst_sort_impl::<u32>(&[]);
        assert!(r.sorted_indices.is_empty());
        assert_eq!(r.log.rounds(), 0);
        let r = parallel_bst_sort_impl(&[42u32]);
        assert_eq!(r.sorted_indices, vec![0]);
        assert_eq!(r.log.rounds(), 1);
    }

    #[test]
    fn adversarial_sorted_order_still_correct() {
        // Sorted input: the tree is a path; rounds = n. Correctness (not
        // performance) must hold.
        let keys: Vec<u32> = (0..200).collect();
        let r = parallel_bst_sort_impl(&keys);
        assert_eq!(r.log.rounds(), 200);
        let got: Vec<u32> = r.sorted_indices.iter().map(|&i| keys[i]).collect();
        assert_eq!(got, keys);
    }
}
