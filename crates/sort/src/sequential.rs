//! The sequential incremental sort — the baseline every parallel variant
//! must reproduce exactly.

use crate::tree::{Bst, NONE};
use ri_core::DependenceGraph;

/// Output of the sequential sort.
#[derive(Debug)]
pub struct SeqSortResult {
    /// The constructed search tree (node = iteration index).
    pub tree: Bst,
    /// Iteration indices in key-sorted order.
    pub sorted_indices: Vec<usize>,
    /// Number of key comparisons performed.
    pub comparisons: u64,
    /// The iteration dependence graph: node `i`'s single recorded
    /// dependence is its tree parent (the last — subsuming — dependence on
    /// its search path, as §3 observes the transitive reduction is the tree
    /// itself).
    #[cfg_attr(not(test), allow(dead_code))] // checked by the depth tests
    pub depgraph: DependenceGraph,
}

/// Insert `keys` into a BST in the given (iteration) order; keys must be
/// pairwise distinct (the paper's simplifying assumption).
pub(crate) fn sequential_bst_sort_impl<T: Ord>(keys: &[T]) -> SeqSortResult {
    let n = keys.len();
    let mut tree = Bst::new(n);
    let mut comparisons = 0u64;
    let mut depgraph = DependenceGraph::with_nodes(n);

    for i in 0..n {
        if tree.root == NONE {
            tree.root = i as u64;
            continue;
        }
        let mut cur = tree.root;
        loop {
            comparisons += 1;
            let slot = match keys[i].cmp(&keys[cur as usize]) {
                std::cmp::Ordering::Less => &mut tree.left[cur as usize],
                std::cmp::Ordering::Greater => &mut tree.right[cur as usize],
                std::cmp::Ordering::Equal => panic!("duplicate key at iteration {i}"),
            };
            if *slot == NONE {
                *slot = i as u64;
                depgraph.add_dep(cur as usize, i);
                break;
            }
            cur = *slot;
        }
    }

    let sorted_indices = tree.in_order();
    SeqSortResult {
        tree,
        sorted_indices,
        comparisons,
        depgraph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pram::random_permutation;

    #[test]
    fn sorts_small() {
        let keys = vec![5, 1, 4, 2, 3];
        let r = sequential_bst_sort_impl(&keys);
        let got: Vec<i32> = r.sorted_indices.iter().map(|&i| keys[i]).collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        assert!(r.tree.is_search_tree(&keys));
    }

    #[test]
    fn sorts_random_order() {
        let n = 10_000;
        let keys: Vec<usize> = random_permutation(n, 99);
        let r = sequential_bst_sort_impl(&keys);
        let got: Vec<usize> = r.sorted_indices.iter().map(|&i| keys[i]).collect();
        let want: Vec<usize> = (0..n).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn comparisons_near_expected() {
        // E[comparisons] ≈ 2 n ln n for random insertion (Cor. 2.4's bound
        // is 2 n ln n; the exact expectation is 2(n+1)H_n − 4n ≈ 1.39 n log₂ n).
        let n = 1 << 14;
        let keys = random_permutation(n, 5);
        let r = sequential_bst_sort_impl(&keys);
        let bound = 2.0 * n as f64 * (n as f64).ln();
        assert!(
            (r.comparisons as f64) < bound,
            "comparisons {} above Cor 2.4 bound {}",
            r.comparisons,
            bound
        );
        assert!((r.comparisons as f64) > n as f64); // sanity lower bound
    }

    #[test]
    fn dependence_depth_logarithmic_on_random_order() {
        let n = 1 << 14;
        let keys = random_permutation(n, 3);
        let r = sequential_bst_sort_impl(&keys);
        let d = r.tree.dependence_depth();
        // whp bound: ~4.3 log₂ n for random BSTs; assert a generous 6x.
        assert!(
            d < 6 * 14,
            "tree depth {d} suspiciously large for random order"
        );
        // depgraph depth (in nodes) == tree height.
        assert_eq!(r.depgraph.depth(), d);
    }

    #[test]
    fn worst_case_order_is_linear_depth() {
        let keys: Vec<u32> = (0..100).collect(); // sorted order: a path
        let r = sequential_bst_sort_impl(&keys);
        assert_eq!(r.tree.dependence_depth(), 100);
        assert_eq!(r.comparisons, 99 * 100 / 2);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn duplicate_keys_rejected() {
        sequential_bst_sort_impl(&[1, 2, 1]);
    }

    #[test]
    fn empty_and_single() {
        let r = sequential_bst_sort_impl::<u32>(&[]);
        assert!(r.sorted_indices.is_empty());
        let r = sequential_bst_sort_impl(&[7]);
        assert_eq!(r.sorted_indices, vec![0]);
        assert_eq!(r.comparisons, 0);
    }
}
