//! The problem-level API: [`SortProblem`] (Algorithm 3, Type 1) and
//! [`BatchSortProblem`] (the §2.3 Type 3 batch variant), both solving
//! through the unified engine to `(SortOutput, RunReport)`.

use ri_core::engine::{ExecMode, Executable, Problem, RunConfig, RunReport, Runner};

use crate::batch::batch_bst_sort_impl;
use crate::parallel::parallel_bst_sort_impl;
use crate::relaxed::relaxed_bst_sort_impl;
use crate::sequential::sequential_bst_sort_impl;
use crate::tree::Bst;

/// The answer of a sort run (any variant): the BST — identical across
/// variants and modes by Theorem 3.2 — plus the sorted order and the
/// comparison count.
#[derive(Debug)]
pub struct SortOutput {
    /// The constructed search tree (node = iteration index).
    pub tree: Bst,
    /// Iteration indices in key-sorted order.
    pub sorted_indices: Vec<usize>,
    /// Total key comparisons.
    pub comparisons: u64,
    /// Lemma 2.5 instrumentation, filled only by the batch (Type 3)
    /// variant's parallel runs: `left_dep_histogram[l]` = number of
    /// (key, earlier-round) pairs with exactly `l` left dependences from
    /// that round. Empty for every other run.
    pub left_dep_histogram: Vec<u64>,
}

impl SortOutput {
    /// The keys in sorted order (resolving indices against the input).
    pub fn sorted<'a, T>(&self, keys: &'a [T]) -> Vec<&'a T> {
        self.sorted_indices.iter().map(|&i| &keys[i]).collect()
    }
}

/// Sorting by incremental BST insertion (§3 of the paper, Type 1).
///
/// `Parallel` mode runs Algorithm 3 (priority-write rounds, depth = the
/// iteration dependence depth); `Sequential` mode runs the classic
/// insertion loop. Both construct the identical tree.
///
/// ```
/// use ri_core::engine::{Problem, RunConfig};
/// use ri_sort::SortProblem;
///
/// let keys = ri_pram::random_permutation(512, 1);
/// let (out, report) = SortProblem::new(&keys).solve(&RunConfig::new());
/// assert_eq!(out.sorted_indices.len(), 512);
/// assert!(report.depth < 100); // O(log n) whp
/// ```
#[derive(Debug)]
pub struct SortProblem<'a, T> {
    keys: &'a [T],
}

impl<'a, T: Ord + Sync> SortProblem<'a, T> {
    /// A sort problem over `keys` (must be pairwise distinct).
    pub fn new(keys: &'a [T]) -> Self {
        SortProblem { keys }
    }
}

struct SortExec<'a, T> {
    keys: &'a [T],
    out: Option<SortOutput>,
}

impl<T: Ord + Sync> Executable for SortExec<'_, T> {
    fn name(&self) -> &str {
        "bst-sort"
    }
    fn execute(&mut self, cfg: &RunConfig) -> RunReport {
        let mut report = RunReport::new("bst-sort");
        report.items = self.keys.len();
        match cfg.mode {
            ExecMode::Sequential => {
                let r = report.phase("solve", cfg.instrument, |_| {
                    sequential_bst_sort_impl(self.keys)
                });
                if !self.keys.is_empty() {
                    report.record_round(self.keys.len(), r.comparisons);
                }
                report.depth = self.keys.len();
                self.out = Some(SortOutput {
                    tree: r.tree,
                    sorted_indices: r.sorted_indices,
                    comparisons: r.comparisons,
                    left_dep_histogram: Vec::new(),
                });
            }
            ExecMode::Parallel => {
                let r = report.phase("solve", cfg.instrument, |_| {
                    parallel_bst_sort_impl(self.keys)
                });
                report.depth = r.log.rounds();
                report.rounds = r.log;
                self.out = Some(SortOutput {
                    tree: r.tree,
                    sorted_indices: r.sorted_indices,
                    comparisons: r.comparisons,
                    left_dep_histogram: Vec::new(),
                });
            }
            // Native relaxed loop: independent slot tasks scheduled off a
            // MultiQueue rebuild the identical tree with the identical
            // comparison count (see `relaxed`'s module docs).
            ExecMode::Relaxed { k } => {
                let r = report.phase("solve", cfg.instrument, |_| {
                    relaxed_bst_sort_impl(self.keys, k, cfg.seed)
                });
                report.depth = r.log.rounds();
                report.rounds = r.log;
                report.rank_inversions = r.rank_inversions;
                self.out = Some(SortOutput {
                    tree: r.tree,
                    sorted_indices: r.sorted_indices,
                    comparisons: r.comparisons,
                    left_dep_histogram: Vec::new(),
                });
            }
        }
        report
    }
}

impl<T: Ord + Sync> Problem for SortProblem<'_, T> {
    type Output = SortOutput;

    fn solve(&self, cfg: &RunConfig) -> (SortOutput, RunReport) {
        let mut exec = SortExec {
            keys: self.keys,
            out: None,
        };
        let report = Runner::new(cfg.clone()).run(&mut exec);
        (exec.out.expect("execute always produces output"), report)
    }
}

/// The Type 3 (batch doubling-round) execution of the same BST sort —
/// the paper's §2.3 worked example. `Sequential` mode falls back to the
/// classic insertion loop (the batch schedule with width-1 rounds *is*
/// the sequential algorithm).
#[derive(Debug)]
pub struct BatchSortProblem<'a, T> {
    keys: &'a [T],
}

impl<'a, T: Ord + Sync> BatchSortProblem<'a, T> {
    /// A batch-sort problem over `keys` (must be pairwise distinct).
    pub fn new(keys: &'a [T]) -> Self {
        BatchSortProblem { keys }
    }
}

struct BatchSortExec<'a, T> {
    keys: &'a [T],
    out: Option<SortOutput>,
}

impl<T: Ord + Sync> Executable for BatchSortExec<'_, T> {
    fn name(&self) -> &str {
        "bst-sort-batch"
    }
    fn execute(&mut self, cfg: &RunConfig) -> RunReport {
        let mut report = RunReport::new("bst-sort-batch");
        report.items = self.keys.len();
        match cfg.mode {
            ExecMode::Sequential => {
                let r = report.phase("solve", cfg.instrument, |_| {
                    sequential_bst_sort_impl(self.keys)
                });
                if !self.keys.is_empty() {
                    report.record_round(self.keys.len(), r.comparisons);
                }
                report.depth = self.keys.len();
                self.out = Some(SortOutput {
                    tree: r.tree,
                    sorted_indices: r.sorted_indices,
                    comparisons: r.comparisons,
                    left_dep_histogram: Vec::new(),
                });
            }
            ExecMode::Parallel | ExecMode::Relaxed { .. } => {
                // The batch variant exists to *measure* the §2.3 doubling
                // schedule (Lemma 2.5 histogram), so relaxing it away
                // would defeat its purpose: relaxed requests run the
                // exact batch schedule and report the fallback.
                if matches!(cfg.mode, ExecMode::Relaxed { .. }) {
                    report.relaxed_fallback = Some(
                        "sort-batch measures the exact §2.3 doubling schedule; ran exact parallel"
                            .into(),
                    );
                }
                let r = report.phase("solve", cfg.instrument, |_| batch_bst_sort_impl(self.keys));
                report.depth = r.log.rounds();
                report.rounds = r.log;
                self.out = Some(SortOutput {
                    tree: r.tree,
                    sorted_indices: r.sorted_indices,
                    comparisons: r.comparisons,
                    left_dep_histogram: r.left_dep_histogram,
                });
            }
        }
        report
    }
}

impl<T: Ord + Sync> Problem for BatchSortProblem<'_, T> {
    type Output = SortOutput;

    fn solve(&self, cfg: &RunConfig) -> (SortOutput, RunReport) {
        let mut exec = BatchSortExec {
            keys: self.keys,
            out: None,
        };
        let report = Runner::new(cfg.clone()).run(&mut exec);
        (exec.out.expect("execute always produces output"), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_pram::random_permutation;

    #[test]
    fn sequential_and_parallel_modes_build_identical_trees() {
        let keys = random_permutation(3000, 11);
        let problem = SortProblem::new(&keys);
        let (seq, seq_report) = problem.solve(&RunConfig::new().sequential());
        let (par, par_report) = problem.solve(&RunConfig::new().parallel());
        assert_eq!(seq.tree, par.tree, "Theorem 3.2");
        assert_eq!(seq.sorted_indices, par.sorted_indices);
        assert_eq!(seq.comparisons, par.comparisons);
        assert_eq!(seq_report.depth, 3000);
        assert!(par_report.depth < 200, "parallel depth is O(log n)");
    }

    #[test]
    fn batch_variant_agrees_with_direct() {
        let keys = random_permutation(2000, 5);
        let (a, report) = BatchSortProblem::new(&keys).solve(&RunConfig::new());
        let (b, _) = SortProblem::new(&keys).solve(&RunConfig::new());
        assert_eq!(a.tree, b.tree);
        assert_eq!(report.depth, report.rounds.rounds());
    }

    #[test]
    fn report_serializes() {
        let keys = random_permutation(256, 3);
        let (_, report) = SortProblem::new(&keys).solve(&RunConfig::new());
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.depth, report.depth);
        assert_eq!(back.algorithm, "bst-sort");
    }
}
