//! The Type 3 (batch) execution of BST insertion — the worked example of
//! §2.3 of the paper.
//!
//! *"On each round i, 2^{i−1} keys are already inserted into a BST and in
//! parallel we try to insert the next 2^{i−1} keys. In the first loop all
//! new keys will search the tree for where they belong. Many will fall into
//! their own leaf and be happy, but there will be some conflicts in which
//! multiple keys fall into the same leaf. The second loop would resolve
//! these conflicts."*
//!
//! The conflict resolution inserts each colliding group in iteration order
//! from the contested slot, which reproduces the sequential tree exactly —
//! the "extra work" of Type 3 is the intra-round comparisons that a
//! sequential run would have avoided via separation.
//!
//! This module also instruments **Lemma 2.5**: for every key `j` and every
//! round `i`, it records how many round-`i` keys have a *left dependence*
//! to `j` (a comparison where `j` descends right). The lemma predicts a
//! geometric tail `P[l] ≤ 2^{-l}`; the bench harness plots the measured
//! histogram.

use ri_core::engine::{execute_type3, RunConfig};
use ri_core::{prefix_rounds, Type3Algorithm};
use ri_pram::{RoundLog, WorkCounter};

use crate::tree::{Bst, NONE};

/// Upper bound on doubling rounds: `⌈log₂ n⌉ + 1 ≤ 64` for any `n` that
/// fits in memory. Keeping the per-probe left-dependence counters in a
/// fixed array of this size (instead of a heap vector per probed key)
/// makes the search phase allocation-free.
const MAX_ROUNDS: usize = 64;

/// Output of the batch (Type 3) sort.
#[derive(Debug)]
pub struct BatchSortResult {
    /// The constructed tree — still equal to the sequential tree.
    pub tree: Bst,
    /// Iteration indices in key-sorted order.
    pub sorted_indices: Vec<usize>,
    /// Total comparisons (frozen-tree searches + conflict resolution).
    pub comparisons: u64,
    /// Per-round log (`rounds() = ⌈log₂ n⌉ + 1` by construction).
    pub log: RoundLog,
    /// `left_dep_histogram[l]` = number of (key, earlier-round) pairs with
    /// exactly `l` left dependences from that round (Lemma 2.5 data).
    pub left_dep_histogram: Vec<u64>,
}

/// Slot in the frozen tree where a probing key landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Slot {
    Root,
    Left(u32),
    Right(u32),
}

/// One key's search result against the frozen tree.
struct Probe {
    key: usize,
    slot: Slot,
    /// Left dependences per earlier round (index = round).
    left_hits: [u16; MAX_ROUNDS],
}

struct BatchState<'a, T> {
    keys: &'a [T],
    tree: Bst,
    round_of: Vec<u16>,
    search_comparisons: WorkCounter,
    resolve_comparisons: u64,
    histogram: Vec<u64>,
}

impl<T: Ord + Sync> Type3Algorithm for BatchState<'_, T> {
    type Output = Probe;

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn run_iteration(&self, k: usize) -> Probe {
        let mut left_hits = [0u16; MAX_ROUNDS];
        let mut slot = Slot::Root;
        let mut cur = self.tree.root;
        while cur != NONE {
            self.search_comparisons.incr();
            let node = cur as usize;
            if self.keys[k] < self.keys[node] {
                slot = Slot::Left(cur as u32);
                cur = self.tree.left[node];
            } else {
                // Descending right: `node`'s key is less than `k`'s — a
                // *left* dependence from node's round to iteration k.
                left_hits[self.round_of[node] as usize] += 1;
                slot = Slot::Right(cur as u32);
                cur = self.tree.right[node];
            }
        }
        Probe {
            key: k,
            slot,
            left_hits,
        }
    }

    fn combine(&mut self, lo: usize, outputs: &mut Vec<Probe>) -> u64 {
        let round = self.round_of[lo] as usize;
        let work_before = self.search_comparisons.get() + self.resolve_comparisons;

        // Resolve conflicts in one allocation-free pass. Probes drain in
        // iteration order and every contested slot was empty in the frozen
        // tree, so the *first* probe to reach a slot is exactly the
        // earliest colliding key — it takes the slot — and every later
        // collider descends from that winner through the subtree the
        // round has grown below it (all this-round keys, so right-steps
        // are intra-round left dependences). This interleaves the old
        // per-group resolution without changing any insertion order
        // within a subtree: groups live in disjoint subtrees.
        for p in outputs.drain(..) {
            let k = p.key;
            let mut hits = p.left_hits;
            let slot_child = match p.slot {
                Slot::Root => &mut self.tree.root,
                Slot::Left(q) => &mut self.tree.left[q as usize],
                Slot::Right(q) => &mut self.tree.right[q as usize],
            };
            if *slot_child == NONE {
                *slot_child = k as u64;
            } else {
                let mut cur = *slot_child;
                loop {
                    self.resolve_comparisons += 1;
                    let node = cur as usize;
                    let child = if self.keys[k] < self.keys[node] {
                        &mut self.tree.left[node]
                    } else {
                        hits[round] += 1;
                        &mut self.tree.right[node]
                    };
                    if *child == NONE {
                        *child = k as u64;
                        break;
                    }
                    cur = *child;
                }
            }

            // Fold the probe into the Lemma 2.5 histogram: one sample per
            // (key, round ≤ current) pair.
            for &l in hits.iter().take(round + 1) {
                let l = l as usize;
                if self.histogram.len() <= l {
                    self.histogram.resize(l + 1, 0);
                }
                self.histogram[l] += 1;
            }
        }

        self.search_comparisons.get() + self.resolve_comparisons - work_before
    }
}

/// Sort by batched (Type 3) BST insertion. Keys must be distinct.
pub(crate) fn batch_bst_sort_impl<T: Ord + Sync>(keys: &[T]) -> BatchSortResult {
    let n = keys.len();
    let rounds = prefix_rounds(n);
    assert!(
        rounds.len() <= MAX_ROUNDS,
        "doubling schedule exceeds MAX_ROUNDS"
    );
    let mut round_of = vec![0u16; n];
    for (r, &(lo, hi)) in rounds.iter().enumerate() {
        for x in round_of.iter_mut().take(hi).skip(lo) {
            *x = r as u16;
        }
    }
    let mut state = BatchState {
        keys,
        tree: Bst::new(n),
        round_of,
        search_comparisons: WorkCounter::new(),
        resolve_comparisons: 0,
        histogram: Vec::new(),
    };
    let log = execute_type3(&mut state, &RunConfig::new().parallel()).rounds;
    let sorted_indices = state.tree.in_order_par();
    BatchSortResult {
        tree: state.tree,
        sorted_indices,
        comparisons: state.search_comparisons.get() + state.resolve_comparisons,
        log,
        left_dep_histogram: state.histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::sequential_bst_sort_impl;
    use ri_pram::random_permutation;

    #[test]
    fn sorts_correctly() {
        let keys = random_permutation(10_000, 21);
        let r = batch_bst_sort_impl(&keys);
        let got: Vec<usize> = r.sorted_indices.iter().map(|&i| keys[i]).collect();
        assert_eq!(got, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn tree_matches_sequential() {
        for seed in 0..5 {
            let keys = random_permutation(3000, seed);
            let batch = batch_bst_sort_impl(&keys);
            let seq = sequential_bst_sort_impl(&keys);
            assert_eq!(batch.tree, seq.tree, "batch tree differs at seed {seed}");
        }
    }

    #[test]
    fn round_count_is_logarithmic_by_construction() {
        let keys = random_permutation(1 << 12, 8);
        let r = batch_bst_sort_impl(&keys);
        assert_eq!(r.log.rounds(), 13);
    }

    #[test]
    fn extra_work_is_constant_factor() {
        // Type 3 does more comparisons than sequential, but only by a
        // constant factor in expectation (Theorem 2.6 discussion).
        let keys = random_permutation(1 << 14, 8);
        let batch = batch_bst_sort_impl(&keys);
        let seq = sequential_bst_sort_impl(&keys);
        let ratio = batch.comparisons as f64 / seq.comparisons as f64;
        assert!(
            (1.0..2.5).contains(&ratio),
            "work ratio {ratio} outside expected constant-factor band"
        );
    }

    #[test]
    fn left_dep_histogram_has_geometric_tail() {
        // Lemma 2.5: P[l left deps from one round] ≤ 2^{-l}; check the
        // measured histogram decays at least geometrically past l = 2.
        let keys = random_permutation(1 << 14, 13);
        let r = batch_bst_sort_impl(&keys);
        let h = &r.left_dep_histogram;
        let total: u64 = h.iter().sum();
        assert!(total > 0);
        for l in 3..h.len().saturating_sub(1) {
            // Allow slack 2x on the ratio but demand decay on average.
            if h[l] > 100 {
                assert!(
                    h[l + 1] * 2 <= h[l] * 3,
                    "histogram not decaying at l={l}: {} -> {}",
                    h[l],
                    h[l + 1]
                );
            }
        }
        // The mass at l >= 1 must be a minority of all samples.
        let ge1: u64 = h.iter().skip(1).sum();
        assert!(ge1 * 2 < total, "left-dep tail too heavy: {ge1}/{total}");
    }

    #[test]
    fn empty_and_single() {
        let r = batch_bst_sort_impl::<u32>(&[]);
        assert!(r.sorted_indices.is_empty());
        let r = batch_bst_sort_impl(&[9u32]);
        assert_eq!(r.sorted_indices, vec![0]);
    }
}
