//! Seeded key-sequence generators behind the `sort`/`sort-batch`
//! workload shapes.
//!
//! The paper's O(log n) dependence-depth bound is an expectation over a
//! *random* insertion order; these shapes pick the orders the tail
//! experiments sweep: random (the benign case, the theorem's regime) and
//! the classic adversarial arrival orders — nearly-sorted, reverse,
//! organ-pipe, few-distinct — whose BST dependence chains are Θ(n), the
//! worst case the serving tier must survive. All sequences keep the sort
//! contract of pairwise-distinct keys: `few-distinct` encodes `k` value
//! classes as `class * n + arrival_index`, i.e. duplicates broken by
//! arrival order, which preserves the deep-spine behaviour of repeated
//! keys without violating strictness.

use ri_pram::random_permutation;

/// The shape vocabulary of `sort`/`sort-batch` (first entry is the
/// default).
pub const SHAPES: [&str; 5] = [
    "random",
    "nearly-sorted",
    "reverse",
    "organ-pipe",
    "few-distinct",
];

/// Generate the key sequence for a named shape. Unknown names are a
/// typed error (never a silent default); `param` is only meaningful for
/// `few-distinct` (the number of value classes, default 8).
pub fn shaped_keys(
    n: usize,
    seed: u64,
    shape: &str,
    param: Option<f64>,
) -> Result<Vec<usize>, String> {
    match shape {
        "random" => Ok(random_permutation(n, seed)),
        "nearly-sorted" => {
            // Identity order with ~n/16 seeded transpositions: long
            // ascending runs → near-worst right-spine dependence chains.
            let mut keys: Vec<usize> = (0..n).collect();
            if n >= 2 {
                let swaps = (n / 16).max(1);
                let pos = random_permutation(n, seed ^ 0x5047);
                for s in 0..swaps.min(n / 2) {
                    keys.swap(pos[2 * s], pos[2 * s + 1]);
                }
            }
            Ok(keys)
        }
        "reverse" => Ok((0..n).rev().collect()),
        "organ-pipe" => {
            // Ascending evens then descending odds: rises to ~n, falls
            // back — the classic organ-pipe profile with distinct keys.
            let mut keys: Vec<usize> = (0..n).step_by(2).collect();
            keys.extend((1..n).step_by(2).rev());
            Ok(keys)
        }
        "few-distinct" => {
            let classes = param.unwrap_or_else(|| 8.0f64.min(n.max(1) as f64));
            if !classes.is_finite()
                || classes < 1.0
                || classes.fract() != 0.0
                || classes > n.max(1) as f64
            {
                return Err(format!(
                    "few-distinct needs an integer class count in [1, n], got {classes}"
                ));
            }
            let k = classes as usize;
            // Balanced random class per arrival, ties broken by arrival
            // index — distinct keys whose sorted order is
            // (class, arrival).
            let assign = random_permutation(n, seed ^ 0xfd15);
            let mut next_in_class = vec![0usize; k];
            Ok((0..n)
                .map(|i| {
                    let c = assign[i] % k;
                    let key = c * n + next_in_class[c];
                    next_in_class[c] += 1;
                    key
                })
                .collect())
        }
        other => Err(format!(
            "unknown sort shape `{other}` (known: {})",
            SHAPES.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation_of_distinct(keys: &[usize]) -> bool {
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[0] < w[1])
    }

    #[test]
    fn every_shape_yields_distinct_keys() {
        for shape in SHAPES {
            let keys = shaped_keys(300, 5, shape, None).unwrap();
            assert_eq!(keys.len(), 300, "{shape}");
            assert!(is_permutation_of_distinct(&keys), "{shape} has ties");
            // Seeded shapes must be reproducible.
            assert_eq!(keys, shaped_keys(300, 5, shape, None).unwrap(), "{shape}");
        }
    }

    #[test]
    fn deterministic_shapes_have_expected_order() {
        assert_eq!(shaped_keys(4, 1, "reverse", None).unwrap(), [3, 2, 1, 0]);
        assert_eq!(
            shaped_keys(6, 1, "organ-pipe", None).unwrap(),
            [0, 2, 4, 5, 3, 1]
        );
    }

    #[test]
    fn nearly_sorted_is_mostly_ascending() {
        let keys = shaped_keys(1000, 9, "nearly-sorted", None).unwrap();
        let ascents = keys.windows(2).filter(|w| w[0] < w[1]).count();
        // n/16 transpositions cost at most 2 descents each.
        assert!(ascents >= 999 - 2 * 63, "only {ascents}/999 ascents");
        assert_ne!(keys, (0..1000).collect::<Vec<_>>(), "no perturbation");
    }

    #[test]
    fn few_distinct_has_k_classes() {
        let keys = shaped_keys(200, 3, "few-distinct", Some(4.0)).unwrap();
        let mut classes: Vec<usize> = keys.iter().map(|k| k / 200).collect();
        classes.sort_unstable();
        classes.dedup();
        assert_eq!(classes.len(), 4);
        assert!(is_permutation_of_distinct(&keys));
    }

    #[test]
    fn bad_shapes_and_params_are_typed_errors() {
        assert!(shaped_keys(10, 1, "sideways", None)
            .unwrap_err()
            .contains("unknown sort shape"));
        for bad in [0.0, -1.0, 2.5, f64::NAN, f64::INFINITY, 1e18] {
            assert!(
                shaped_keys(10, 1, "few-distinct", Some(bad)).is_err(),
                "{bad} accepted"
            );
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for shape in SHAPES {
            assert_eq!(shaped_keys(0, 1, shape, None).unwrap(), Vec::<usize>::new());
            assert_eq!(shaped_keys(1, 1, shape, None).unwrap(), [0]);
        }
    }
}
