//! The arena binary search tree shared by all three sort implementations.
//!
//! Nodes are identified by *iteration index* (the position of their key in
//! the random insertion order), which is exactly the priority used by the
//! paper's priority-writes. No rebalancing — the randomness of the order is
//! what keeps the tree (and hence the dependence depth) shallow.

/// Sentinel for an absent child / empty root.
pub const NONE: u64 = u64::MAX;

/// An explicit binary search tree over iterations `0..n`.
///
/// `left[i]` / `right[i]` hold the iteration index of node `i`'s children
/// (or [`NONE`]). Structural equality between a parallel and a sequential
/// run (`==`) is the paper's Theorem 3.2 statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bst {
    /// Iteration index of the root key.
    pub root: u64,
    /// Left child per node, by iteration index.
    pub left: Vec<u64>,
    /// Right child per node, by iteration index.
    pub right: Vec<u64>,
}

impl Bst {
    /// An empty tree over `n` (future) nodes.
    pub fn new(n: usize) -> Self {
        Bst {
            root: NONE,
            left: vec![NONE; n],
            right: vec![NONE; n],
        }
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.left.len()
    }

    /// True if the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }

    /// In-order traversal: iteration indices in key-sorted order.
    /// Iterative (explicit stack) so adversarially deep trees cannot
    /// overflow the call stack.
    pub fn in_order(&self) -> Vec<usize> {
        self.in_order_from(self.root, self.len())
    }

    /// Iterative in-order walk of the subtree rooted at `node`;
    /// `capacity` is the caller's output-size hint.
    fn in_order_from(&self, node: u64, capacity: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(capacity);
        let mut stack: Vec<u64> = Vec::new();
        let mut cur = node;
        while cur != NONE || !stack.is_empty() {
            while cur != NONE {
                stack.push(cur);
                cur = self.left[cur as usize];
            }
            let node = stack.pop().expect("nonempty by loop condition");
            out.push(node as usize);
            cur = self.right[node as usize];
        }
        out
    }

    /// In-order traversal assembled by parallel divide-and-conquer:
    /// [`rayon::join`] recurses on the two subtrees (its thread budget
    /// halves per fork, so at most `threads − 1` helpers are spawned for
    /// the whole tree) and concatenates `left ++ node ++ right`. The
    /// recursion depth is capped — a path-shaped tree degrades to the
    /// iterative walk instead of overflowing the stack. Output is
    /// identical to [`Bst::in_order`].
    pub fn in_order_par(&self) -> Vec<usize> {
        // Random insertion orders give O(log n) expected height; 4× that
        // comfortably covers the whp bound while bounding stack depth.
        let depth_cap = 4 * (usize::BITS - self.len().leading_zeros()) as usize + 4;
        self.in_order_rec(self.root, depth_cap)
    }

    fn in_order_rec(&self, node: u64, depth: usize) -> Vec<usize> {
        if node == NONE {
            return Vec::new();
        }
        if depth == 0 {
            // Subtree size is unknown; deep fallbacks grow as they walk.
            return self.in_order_from(node, 0);
        }
        let (l, r) = (self.left[node as usize], self.right[node as usize]);
        let (mut left, right) = rayon::join(
            || self.in_order_rec(l, depth - 1),
            || self.in_order_rec(r, depth - 1),
        );
        left.reserve(right.len() + 1);
        left.push(node as usize);
        left.extend(right);
        left
    }

    /// Depth (in nodes, root = 1) of every node; 0 for detached slots.
    ///
    /// Per §3, a node's depth equals the length of its iteration-dependence
    /// path, so `depths().max()` is the iteration dependence depth `D(G)`.
    pub fn depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.len()];
        if self.root == NONE {
            return depth;
        }
        let mut stack = vec![(self.root, 1u32)];
        while let Some((node, d)) = stack.pop() {
            depth[node as usize] = d;
            let (l, r) = (self.left[node as usize], self.right[node as usize]);
            if l != NONE {
                stack.push((l, d + 1));
            }
            if r != NONE {
                stack.push((r, d + 1));
            }
        }
        depth
    }

    /// The iteration dependence depth `D(G)` = tree height in nodes.
    pub fn dependence_depth(&self) -> usize {
        self.depths().iter().copied().max().unwrap_or(0) as usize
    }

    /// Check the BST order invariant against the key array.
    pub fn is_search_tree<T: Ord>(&self, keys: &[T]) -> bool {
        let inorder = self.in_order();
        inorder.len() == self.len() && inorder.windows(2).all(|w| keys[w[0]] < keys[w[1]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build by hand:      1
    ///                    / \
    ///                   2   0
    fn tiny() -> Bst {
        let mut t = Bst::new(3);
        t.root = 1;
        t.left[1] = 2;
        t.right[1] = 0;
        t
    }

    #[test]
    fn in_order_tiny() {
        assert_eq!(tiny().in_order(), vec![2, 1, 0]);
        assert_eq!(tiny().in_order_par(), vec![2, 1, 0]);
    }

    #[test]
    fn in_order_par_matches_iterative_on_path_tree() {
        // A right-path tree deeper than the recursion cap must fall back
        // to the iterative walk and still produce the identical order.
        let n = 5000;
        let mut t = Bst::new(n);
        t.root = 0;
        for i in 0..n - 1 {
            t.right[i] = (i + 1) as u64;
        }
        assert_eq!(t.in_order_par(), t.in_order());
        assert_eq!(t.in_order().len(), n);
    }

    #[test]
    fn depths_tiny() {
        assert_eq!(tiny().depths(), vec![2, 1, 2]);
        assert_eq!(tiny().dependence_depth(), 2);
    }

    #[test]
    fn search_tree_invariant() {
        // keys by iteration: it 0 -> 30, it 1 -> 20, it 2 -> 10.
        assert!(tiny().is_search_tree(&[30, 20, 10]));
        assert!(!tiny().is_search_tree(&[10, 20, 30]));
    }

    #[test]
    fn empty_tree() {
        let t = Bst::new(0);
        assert!(t.in_order().is_empty());
        assert_eq!(t.dependence_depth(), 0);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // Right spine of 100k nodes: iterative traversal must survive.
        let n = 100_000;
        let mut t = Bst::new(n);
        t.root = 0;
        for i in 0..n - 1 {
            t.right[i] = (i + 1) as u64;
        }
        let order = t.in_order();
        assert_eq!(order.len(), n);
        assert_eq!(t.dependence_depth(), n);
    }
}
