//! Registry entries: `"sort"` (Algorithm 3, Type 1) and `"sort-batch"`
//! (the §2.3 Type 3 batch execution), both over a seeded random
//! permutation of `0..n`.

use ri_core::engine::registry::{ErasedProblem, OutputSummary, Registry};
use ri_core::engine::{Problem, RunConfig, RunReport};
use ri_pram::random_permutation;

use crate::problem::{BatchSortProblem, SortOutput, SortProblem};

/// Register this crate's problems.
pub fn register(reg: &mut Registry) {
    reg.register(
        "sort",
        "incremental BST sort of a random permutation (§3, Type 1)",
        |spec| {
            Ok(Box::new(SortWorkload {
                name: "sort",
                keys: random_permutation(spec.n, spec.seed),
            }))
        },
    );
    reg.register(
        "sort-batch",
        "Type 3 batch execution of BST sort (§2.3 worked example)",
        |spec| {
            Ok(Box::new(SortWorkload {
                name: "sort-batch",
                keys: random_permutation(spec.n, spec.seed),
            }))
        },
    );
}

struct SortWorkload {
    name: &'static str,
    keys: Vec<usize>,
}

impl SortWorkload {
    fn summarize(&self, out: &SortOutput) -> OutputSummary {
        let sorted = out
            .sorted_indices
            .windows(2)
            .all(|w| self.keys[w[0]] < self.keys[w[1]])
            && out.sorted_indices.len() == self.keys.len();
        let mut s = OutputSummary::new();
        s.answer_num("items", self.keys.len() as f64)
            .answer_bool("sorted", sorted)
            .answer_num("tree_depth", out.tree.dependence_depth() as f64)
            .metric_num("comparisons", out.comparisons as f64);
        s
    }
}

impl ErasedProblem for SortWorkload {
    fn name(&self) -> &str {
        self.name
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (out, report) = if self.name == "sort-batch" {
            BatchSortProblem::new(&self.keys).solve(cfg)
        } else {
            SortProblem::new(&self.keys).solve(cfg)
        };
        (self.summarize(&out), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::WorkloadSpec;

    #[test]
    fn registered_names_solve() {
        let mut reg = Registry::new();
        register(&mut reg);
        for name in ["sort", "sort-batch"] {
            let (summary, report) = reg
                .solve(name, &WorkloadSpec::new(256, 3), &RunConfig::new())
                .unwrap();
            assert_eq!(report.items, 256);
            assert!(summary.to_json().contains("\"sorted\":true"), "{name}");
        }
    }
}
