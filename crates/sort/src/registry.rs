//! Registry entries: `"sort"` (Algorithm 3, Type 1) and `"sort-batch"`
//! (the §2.3 Type 3 batch execution), both over a seeded key sequence
//! shaped by [`crate::workloads::shaped_keys`] (`"random"` by default;
//! adversarial arrival orders behind the other shape names) — plus their
//! native streaming adapters, which reveal the same fixed sequence
//! prefix by prefix and report each batch's sorted-rank insertions as
//! the delta.

use ri_core::engine::json::Value;
use ri_core::engine::registry::{
    ErasedIncremental, ErasedProblem, OutputSummary, Registry, WorkloadSpec,
};
use ri_core::engine::session::{BatchDelta, FeedState};
use ri_core::engine::{Problem, RunConfig, RunReport};

use crate::problem::{BatchSortProblem, SortOutput, SortProblem};
use crate::workloads::shaped_keys;

fn spec_keys(spec: &WorkloadSpec) -> Result<Vec<usize>, String> {
    shaped_keys(spec.n, spec.seed, spec.shape_or("random"), spec.param)
}

/// Register this crate's problems.
pub fn register(reg: &mut Registry) {
    reg.register(
        "sort",
        "incremental BST sort of a shaped key sequence (§3, Type 1)",
        |spec| {
            Ok(Box::new(SortWorkload {
                name: "sort",
                keys: spec_keys(spec)?,
            }))
        },
    );
    reg.register(
        "sort-batch",
        "Type 3 batch execution of BST sort (§2.3 worked example)",
        |spec| {
            Ok(Box::new(SortWorkload {
                name: "sort-batch",
                keys: spec_keys(spec)?,
            }))
        },
    );
    reg.register_incremental("sort", |spec| {
        Ok(Box::new(SortStream::open("sort", spec_keys(spec)?)))
    });
    reg.register_incremental("sort-batch", |spec| {
        Ok(Box::new(SortStream::open("sort-batch", spec_keys(spec)?)))
    });
}

/// Solve `keys` under the named variant and digest the output: the
/// shared path of the one-shot workload and every streamed prefix.
fn solve_keys(name: &str, keys: &[usize], cfg: &RunConfig) -> (SortOutput, RunReport) {
    if name == "sort-batch" {
        BatchSortProblem::new(keys).solve(cfg)
    } else {
        SortProblem::new(keys).solve(cfg)
    }
}

fn summarize(keys: &[usize], out: &SortOutput) -> OutputSummary {
    let sorted = out
        .sorted_indices
        .windows(2)
        .all(|w| keys[w[0]] < keys[w[1]])
        && out.sorted_indices.len() == keys.len();
    let mut s = OutputSummary::new();
    s.answer_num("items", keys.len() as f64)
        .answer_bool("sorted", sorted)
        .answer_num("tree_depth", out.tree.dependence_depth() as f64)
        .metric_num("comparisons", out.comparisons as f64);
    s
}

struct SortWorkload {
    name: &'static str,
    keys: Vec<usize>,
}

impl ErasedProblem for SortWorkload {
    fn name(&self) -> &str {
        self.name
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (out, report) = solve_keys(self.name, &self.keys, cfg);
        (summarize(&self.keys, &out), report)
    }
}

/// At most this many `[key, rank]` insertion pairs are spelled out per
/// delta; larger batches set `"truncated": true` and keep the count.
const MAX_DELTA_INSERTIONS: usize = 32;

/// The native streaming adapter: the full permutation is fixed at open
/// (`capacity`, workload seed), each batch reveals the next keys, and
/// the delta reports where they landed — each new key's rank in the
/// sorted prefix *at its own insertion* (keys are inserted in stream
/// order, so ranks are deterministic and independent of batching only
/// through the final state; the sequence itself is part of the witness).
struct SortStream {
    name: &'static str,
    keys: Vec<usize>,
    /// The absorbed prefix's keys in sorted order.
    sorted: Vec<usize>,
    state: FeedState,
}

impl SortStream {
    fn open(name: &'static str, keys: Vec<usize>) -> Self {
        let capacity = keys.len();
        SortStream {
            name,
            keys,
            sorted: Vec::new(),
            state: FeedState::new(capacity),
        }
    }
}

impl ErasedIncremental for SortStream {
    fn name(&self) -> &str {
        self.name
    }

    fn capacity(&self) -> usize {
        self.state.capacity()
    }

    fn absorbed(&self) -> usize {
        self.state.absorbed()
    }

    fn native(&self) -> bool {
        true
    }

    fn approx_bytes(&self) -> usize {
        // Full instance + sorted prefix, usize keys each.
        self.keys.len() * 16 + 128
    }

    fn feed(&mut self, count: usize, cfg: &RunConfig) -> Result<(BatchDelta, RunReport), String> {
        let (batch, lo, hi) = self.state.advance(count)?;
        let mut insertions = Vec::new();
        for &key in &self.keys[lo..hi] {
            let rank = self.sorted.partition_point(|&k| k < key);
            self.sorted.insert(rank, key);
            if insertions.len() < MAX_DELTA_INSERTIONS {
                insertions.push(Value::Arr(vec![
                    Value::Num(key as f64),
                    Value::Num(rank as f64),
                ]));
            }
        }
        let delta = Value::Obj(vec![
            ("inserted".into(), Value::Num(count as f64)),
            ("insertions".into(), Value::Arr(insertions)),
            (
                "truncated".into(),
                Value::Bool(count > MAX_DELTA_INSERTIONS),
            ),
        ]);
        // The authoritative answer + trace come from solving the prefix
        // through the real executors — what keeps the final batch equal
        // to the one-shot solve bit for bit.
        let (out, report) = solve_keys(self.name, &self.keys[..hi], cfg);
        let summary = summarize(&self.keys[..hi], &out);
        Ok((
            BatchDelta::solved(
                batch,
                count,
                hi,
                self.state.capacity(),
                delta,
                &summary,
                &report,
            ),
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::WorkloadSpec;

    #[test]
    fn registered_names_solve() {
        let mut reg = Registry::new();
        register(&mut reg);
        for name in ["sort", "sort-batch"] {
            let (summary, report) = reg
                .solve(name, &WorkloadSpec::new(256, 3), &RunConfig::new())
                .unwrap();
            assert_eq!(report.items, 256);
            assert!(summary.to_json().contains("\"sorted\":true"), "{name}");
        }
    }

    #[test]
    fn shaped_specs_solve_and_unknown_shapes_are_rejected() {
        let mut reg = Registry::new();
        register(&mut reg);
        for shape in crate::workloads::SHAPES {
            let spec = WorkloadSpec::new(128, 3).shape(shape);
            for name in ["sort", "sort-batch"] {
                let (summary, _) = reg.solve(name, &spec, &RunConfig::new()).unwrap();
                assert!(
                    summary.to_json().contains("\"sorted\":true"),
                    "{name}/{shape}"
                );
            }
        }
        let bad = WorkloadSpec::new(64, 1).shape("sideways");
        for name in ["sort", "sort-batch"] {
            let err = reg.solve(name, &bad, &RunConfig::new()).unwrap_err();
            assert!(err.to_string().contains("unknown sort shape"), "{name}");
            let err = match reg.construct_incremental(name, &bad) {
                Err(e) => e,
                Ok(_) => panic!("{name}: bad shape accepted by the stream ctor"),
            };
            assert!(err.to_string().contains("unknown sort shape"), "{name}");
        }
    }

    #[test]
    fn stream_matches_one_shot_and_reports_ranks() {
        let mut reg = Registry::new();
        register(&mut reg);
        for name in ["sort", "sort-batch"] {
            assert!(reg.has_incremental(name), "{name}");
            let spec = WorkloadSpec::new(48, 7);
            let cfg = RunConfig::new().seed(2);
            let mut inc = reg.construct_incremental(name, &spec).unwrap();
            assert!(inc.native());
            let mut last = None;
            for count in [1, 15, 32] {
                let (delta, _) = inc.feed(count, &cfg).unwrap();
                assert!(!delta.pending, "{name}");
                assert_eq!(
                    delta.delta.get("inserted"),
                    Some(&Value::Num(count as f64)),
                    "{name}"
                );
                last = Some(delta);
            }
            let last = last.unwrap();
            assert!(last.complete);
            // Final streamed answer + trace equal the one-shot solve.
            let (one_shot, report) = reg.solve(name, &spec, &cfg).unwrap();
            assert_eq!(last.answer, one_shot.answer().to_vec(), "{name}");
            assert_eq!(
                last.trace,
                ri_core::engine::RoundTrace::from_report(&report),
                "{name}"
            );
        }
    }
}
