//! The k-relaxed incremental sort: Algorithm 3's tree, scheduled by slot.
//!
//! The relaxed driver reformulates BST insertion as independent **slot
//! tasks**. A task owns an empty tree slot (root, or a left/right child
//! pointer) plus the *pending set* — every iteration index whose root
//! path leads into that slot. The sequential algorithm fills the slot
//! with the minimum pending index (the first to arrive), so a task can
//! resolve itself without consulting any other task: place the winner
//! `min(pending)`, compare the rest against it once each, and split them
//! into the two child-slot tasks. That is exactly the sequential
//! recursion, so the tree, the sorted order, and the comparison count
//! are all **identical** to the sequential run no matter when each task
//! executes — which is what makes the scheduling freely relaxable.
//!
//! Tasks are driven from a [`MultiQueue`] with priority `min(pending)` —
//! the time the sequential algorithm would fill that slot. Each round
//! drains the queue in k-relaxed pop order and processes the drained
//! tasks in parallel (their slot writes are disjoint); child tasks land
//! in the next round's drain. Pops happen only on the coordinating
//! thread, so the schedule (and the [`rank_inversions`] it reports) is
//! deterministic per `(k, seed)` and independent of pool width; at
//! `k = 1` the drain comes back in exact priority order and reports zero
//! inversions.
//!
//! Pending sets start sorted (`0..n`) and splitting preserves order, so
//! `min(pending)` is always `pending[0]` — no scan, no re-sort.
//!
//! [`rank_inversions`]: ri_pram::MultiQueue::rank_inversions

use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

use crate::tree::{Bst, NONE};
use ri_core::engine::grain;
use ri_pram::{MultiQueue, RoundLog, WorkCounter};

/// Output of the relaxed sort.
#[derive(Debug)]
pub struct RelaxedSortResult {
    /// The constructed search tree — equal to the sequential tree.
    pub tree: Bst,
    /// Iteration indices in key-sorted order.
    pub sorted_indices: Vec<usize>,
    /// Total key comparisons (equal to the sequential count: each key
    /// meets each of its tree ancestors exactly once).
    pub comparisons: u64,
    /// Per-drain log; `log.rounds()` = number of queue drains.
    pub log: RoundLog,
    /// Out-of-priority-order pops across all drains (0 at `k = 1`).
    pub rank_inversions: u64,
}

/// Where a slot task's empty slot lives.
#[derive(Debug, Clone, Copy)]
enum Cursor {
    Root,
    Left(u32),
    Right(u32),
}

/// One schedulable unit: an empty slot and its sorted pending set.
struct SlotTask {
    cursor: Cursor,
    pending: Vec<u32>,
}

/// Sort by k-relaxed slot scheduling (see the module docs). Keys must be
/// distinct; `seed` fixes the relaxed pop order.
pub(crate) fn relaxed_bst_sort_impl<T: Ord + Sync>(
    keys: &[T],
    k: usize,
    seed: u64,
) -> RelaxedSortResult {
    let n = keys.len();
    let root = AtomicU64::new(NONE);
    let left: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NONE)).collect();
    let right: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NONE)).collect();
    let comparisons = WorkCounter::new();

    // Resolve one task: place the winner, split the rest toward the two
    // child slots. Slot writes are disjoint across tasks (each task owns
    // its slot), so concurrent resolution is race-free.
    let process = |task: SlotTask| -> (Option<SlotTask>, Option<SlotTask>) {
        let winner = task.pending[0];
        let slot = match task.cursor {
            Cursor::Root => &root,
            Cursor::Left(v) => &left[v as usize],
            Cursor::Right(v) => &right[v as usize],
        };
        slot.store(winner as u64, Ordering::Release);
        let rest = &task.pending[1..];
        comparisons.add(rest.len() as u64);
        let less = |i: &&u32| keys[**i as usize] < keys[winner as usize];
        let (lo, hi): (Vec<u32>, Vec<u32>) = if grain::parallel_round(rest.len()) {
            // Chunked parallel partition; ordered concatenation keeps the
            // pending sets sorted.
            let chunk = rest.len().div_ceil(rayon::recommended_splits());
            let parts: Vec<(Vec<u32>, Vec<u32>)> = rest
                .par_chunks(chunk)
                .map(|cc| cc.iter().partition(less))
                .collect();
            let mut lo = Vec::new();
            let mut hi = Vec::new();
            for (l, h) in parts {
                lo.extend(l);
                hi.extend(h);
            }
            (lo, hi)
        } else {
            rest.iter().partition(less)
        };
        let child = |cursor: Cursor, pending: Vec<u32>| {
            (!pending.is_empty()).then_some(SlotTask { cursor, pending })
        };
        (
            child(Cursor::Left(winner), lo),
            child(Cursor::Right(winner), hi),
        )
    };

    let mq: MultiQueue<SlotTask> = MultiQueue::new(k, seed);
    if n > 0 {
        mq.push(
            0,
            SlotTask {
                cursor: Cursor::Root,
                pending: (0..n as u32).collect(),
            },
        );
    }
    let mut order: Vec<(u64, SlotTask)> = Vec::new();
    let mut log = RoundLog::new();
    let mut work_mark = 0u64;
    while !mq.is_empty() {
        // Each drain is its own inversion epoch: child priorities restart
        // below previously popped ones by construction, and the measured
        // relaxation should be the queue's, not the drain loop's.
        mq.begin_epoch();
        order.clear();
        mq.pop_batch(usize::MAX, &mut order);
        let round_items = order.len();
        let children: Vec<(Option<SlotTask>, Option<SlotTask>)> =
            if round_items > 1 && grain::parallel_round(round_items) {
                std::mem::take(&mut order)
                    .into_par_iter()
                    .map(|(_, task)| process(task))
                    .collect()
            } else {
                order.drain(..).map(|(_, task)| process(task)).collect()
            };
        for (lo, hi) in children {
            for task in [lo, hi].into_iter().flatten() {
                mq.push(task.pending[0] as u64, task);
            }
        }
        let now = comparisons.get();
        log.record(round_items, now - work_mark);
        work_mark = now;
    }

    let tree = Bst {
        root: root.into_inner(),
        left: left.into_iter().map(|a| a.into_inner()).collect(),
        right: right.into_iter().map(|a| a.into_inner()).collect(),
    };
    let sorted_indices = tree.in_order_par();
    RelaxedSortResult {
        tree,
        sorted_indices,
        comparisons: comparisons.get(),
        log,
        rank_inversions: mq.rank_inversions(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::parallel_bst_sort_impl;
    use crate::sequential::sequential_bst_sort_impl;
    use ri_pram::random_permutation;

    #[test]
    fn tree_and_comparisons_identical_to_sequential() {
        for seed in 0..4 {
            let keys = random_permutation(2000, seed);
            let seq = sequential_bst_sort_impl(&keys);
            for k in [1usize, 4, 64] {
                let rel = relaxed_bst_sort_impl(&keys, k, seed ^ 0x5a);
                assert_eq!(rel.tree, seq.tree, "k={k} seed={seed}");
                assert_eq!(rel.sorted_indices, seq.sorted_indices, "k={k}");
                assert_eq!(rel.comparisons, seq.comparisons, "k={k}");
            }
        }
    }

    #[test]
    fn agrees_with_parallel_and_k1_is_exact() {
        let keys = random_permutation(4096, 9);
        let par = parallel_bst_sort_impl(&keys);
        let exact = relaxed_bst_sort_impl(&keys, 1, 3);
        assert_eq!(exact.tree, par.tree);
        assert_eq!(exact.rank_inversions, 0, "k=1 pops in exact order");
        let relaxed = relaxed_bst_sort_impl(&keys, 16, 3);
        assert_eq!(relaxed.tree, par.tree);
    }

    #[test]
    fn empty_and_single() {
        let r = relaxed_bst_sort_impl::<u32>(&[], 4, 0);
        assert!(r.sorted_indices.is_empty());
        assert_eq!(r.log.rounds(), 0);
        let r = relaxed_bst_sort_impl(&[7u32], 4, 0);
        assert_eq!(r.sorted_indices, vec![0]);
        assert_eq!(r.comparisons, 0);
    }

    #[test]
    fn sorted_input_still_correct() {
        let keys: Vec<u32> = (0..300).collect();
        let r = relaxed_bst_sort_impl(&keys, 8, 1);
        let got: Vec<u32> = r.sorted_indices.iter().map(|&i| keys[i]).collect();
        assert_eq!(got, keys);
    }
}
