//! # `ri-sort` — incremental BST comparison sorting (§3 of the paper)
//!
//! Sorting by inserting keys into an (unbalanced) binary search tree in
//! random order is the paper's warm-up Type 1 algorithm:
//!
//! * Inserting a key depends on at most two earlier keys (its sorted-order
//!   predecessor and successor) — a *2-bounded dependence* — so by
//!   Theorem 2.1 the iteration dependence depth is `O(log n)` whp
//!   (Lemma 3.1).
//! * Algorithm 3 parallelises the insertion with **priority-writes**: all
//!   outstanding keys race one step down the tree per round, concurrent
//!   writers of an empty child slot are resolved by minimum iteration
//!   index, and the resulting tree is *identical* to the sequential tree
//!   (Theorem 3.2).
//!
//! Three implementations behind two problem types:
//! * [`SortProblem`] — sequential mode runs the classic insertion loop;
//!   parallel mode runs Algorithm 3 with synchronous rounds (snapshot /
//!   priority-write / descend phases), measured rounds = the iteration
//!   dependence depth;
//! * [`BatchSortProblem`] — the §2.3 worked example of a **Type 3**
//!   execution of the same algorithm (doubling rounds + conflict
//!   resolution), used by the Lemma 2.5 tail experiment.
//!
//! Both solve through the unified engine (`solve(&RunConfig)` →
//! `(SortOutput, RunReport)`) and register in the problem registry as
//! `"sort"` and `"sort-batch"` ([`registry::register`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod parallel;
pub mod problem;
pub mod registry;
mod relaxed;
mod sequential;
pub mod tree;
pub mod workloads;

pub use problem::{BatchSortProblem, SortOutput, SortProblem};
pub use tree::Bst;
