//! Minimal HTTP/1.1 message handling over any `Read`/`Write` stream.
//!
//! The server speaks the smallest useful HTTP subset, std-only: one
//! request per connection (every response carries `Connection: close`),
//! `Content-Length` bodies only (no chunked transfer), and a bounded
//! header section. Responses are always JSON. The [`request`] helper is
//! the matching client side, used by `loadgen` and the end-to-end tests.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Hard cap on the request head (request line + headers): a head this
/// large is never legitimate for this API.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any query string stripped.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Case-insensitive header lookup (names are stored lower-cased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// The bytes were not a well-formed HTTP/1.1 request (or used an
    /// unsupported feature such as chunked transfer encoding).
    BadRequest(String),
    /// The declared body length exceeds the server's limit.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
        /// Body bytes that had already arrived with the head (the caller
        /// must not re-read them when draining the remainder).
        buffered: usize,
    },
    /// The underlying stream failed (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ReadError::BodyTooLarge {
                declared, limit, ..
            } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read and parse one HTTP/1.1 request from `stream`, enforcing
/// [`MAX_HEAD_BYTES`] on the head and `max_body` on the declared body
/// length (checked *before* the body is read, so an oversized upload is
/// rejected without buffering it).
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<HttpRequest, ReadError> {
    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(ReadError::BadRequest(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::BadRequest(
                "connection closed before the request head completed".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::BadRequest("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ReadError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ReadError::BadRequest("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::BadRequest(format!("malformed header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = HttpRequest {
        method,
        path,
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::BadRequest(
            "chunked transfer encoding is not supported; send Content-Length".into(),
        ));
    }

    let content_length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::BadRequest(format!("bad Content-Length `{v}`")))?,
    };
    if content_length > max_body {
        return Err(ReadError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
            buffered: buf.len().saturating_sub(head_end + 4),
        });
    }

    // The body may have arrived partly (or wholly) with the head.
    let body_start = head_end + 4; // past the \r\n\r\n
    let mut body = buf[body_start.min(buf.len())..].to_vec();
    if body.len() > content_length {
        return Err(ReadError::BadRequest(
            "more body bytes than Content-Length declared".into(),
        ));
    }
    let already = body.len();
    body.resize(content_length, 0);
    stream.read_exact(&mut body[already..])?;
    request.body = body;
    Ok(request)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write one JSON response with `Connection: close` semantics.
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A client-side response: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// The response status code.
    pub status: u16,
    /// The response body.
    pub body: String,
}

/// Perform one HTTP request against `addr` (connect, send, read the full
/// response, close), with `timeout` applied to connect and to each read.
/// This is the client side of the one-request-per-connection protocol the
/// server speaks; `loadgen` and the end-to-end tests drive it.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // A server may reject mid-upload (e.g. 413 on the declared length)
    // and close its read side; keep any write error aside and try to read
    // the response anyway — it is only fatal if no response arrived.
    let written = stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(body.as_bytes()))
        .and_then(|_| stream.flush());

    let mut raw = Vec::new();
    let read = stream.read_to_end(&mut raw);
    if raw.is_empty() {
        written?;
        read?;
    }
    parse_response(&raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn parse_response(raw: &[u8]) -> Result<HttpResponse, String> {
    let head_end = find_head_end(raw).ok_or("response head never completed")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "response head not UTF-8")?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let body = std::str::from_utf8(&raw[head_end + 4..])
        .map_err(|_| "response body not UTF-8")?
        .to_string();
    Ok(HttpResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /solve?x=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut &raw[..], 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..], 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let raw = b"POST /solve HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        match read_request(&mut &raw[..], 1024) {
            Err(ReadError::BodyTooLarge {
                declared,
                limit,
                buffered,
            }) => {
                assert_eq!(declared, 999999);
                assert_eq!(limit, 1024);
                assert_eq!(buffered, 0);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }

        // Body bytes that arrived with the head are reported so the
        // caller's drain does not re-request (and stall on) them.
        let coalesced = b"POST /solve HTTP/1.1\r\nContent-Length: 999999\r\n\r\nabcdefgh";
        match read_request(&mut &coalesced[..], 1024) {
            Err(ReadError::BodyTooLarge { buffered, .. }) => assert_eq!(buffered, 8),
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_and_unsupported_features() {
        for raw in [
            &b"NOT A REQUEST\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
        ] {
            assert!(
                matches!(
                    read_request(&mut &raw[..], 1024),
                    Err(ReadError::BadRequest(_))
                ),
                "input: {}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn response_writer_and_parser_agree() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}").unwrap();
        let resp = parse_response(&out).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"ok\":true}");
        assert!(String::from_utf8_lossy(&out).contains("Connection: close"));
    }
}
