//! Minimal HTTP/1.1 message handling over any `Read`/`Write` stream.
//!
//! The server speaks the smallest useful HTTP subset, std-only:
//! `Content-Length` bodies only (no chunked transfer), a bounded header
//! section, and — since the router PR — **persistent connections**:
//! requests are read through a caller-held carry buffer
//! ([`read_request_buffered`]) so bytes that arrive beyond one request's
//! body (a pipelined next request) are kept for the next read instead of
//! being dropped, and responses advertise `Connection: keep-alive`
//! whenever the request allows it. Responses are always JSON.
//!
//! Client side: [`request`] performs a one-shot request (connect, send
//! with `Connection: close`, read, close) and [`ClientConn`] holds one
//! keep-alive connection open across requests — what the router's
//! backend proxying uses so a proxied solve does not pay a TCP connect.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Hard cap on the request head (request line + headers): a head this
/// large is never legitimate for this API.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with any query string stripped.
    pub path: String,
    /// The HTTP version token (`HTTP/1.1`, `HTTP/1.0`).
    pub version: String,
    /// Header `(name, value)` pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Case-insensitive header lookup (names are stored lower-cased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client allows the connection to stay open after the
    /// response: an explicit `Connection` header wins; absent one,
    /// HTTP/1.1 defaults to keep-alive and HTTP/1.0 to close.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(c) if c.eq_ignore_ascii_case("close") => false,
            Some(c) if c.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly before sending any byte of
    /// a (next) request — the normal end of a keep-alive connection, not
    /// a protocol error.
    Closed,
    /// The bytes were not a well-formed HTTP/1.1 request (or used an
    /// unsupported feature such as chunked transfer encoding).
    BadRequest(String),
    /// The declared body length exceeds the server's limit.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
        /// Body bytes that had already arrived with the head (the caller
        /// must not re-read them when draining the remainder).
        buffered: usize,
    },
    /// The underlying stream failed (including read timeouts).
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ReadError::BodyTooLarge {
                declared, limit, ..
            } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Read and parse one HTTP/1.1 request from `stream` (one-shot form: no
/// carry buffer, so any pipelined bytes beyond the first request are
/// dropped). See [`read_request_buffered`] for the keep-alive form.
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<HttpRequest, ReadError> {
    let mut carry = Vec::new();
    read_request_buffered(stream, &mut carry, max_body)
}

/// Read and parse one HTTP/1.1 request, carrying excess bytes between
/// calls: `carry` holds bytes already read from the stream but beyond the
/// previous request's body (a pipelined next request). The head is capped
/// at [`MAX_HEAD_BYTES`]; the declared body length is checked against
/// `max_body` *before* the body is read, so an oversized upload is
/// rejected without buffering it.
pub fn read_request_buffered(
    stream: &mut impl Read,
    carry: &mut Vec<u8>,
    max_body: usize,
) -> Result<HttpRequest, ReadError> {
    // Accumulate until the blank line that ends the head, starting from
    // whatever the previous request left behind.
    let mut buf = std::mem::take(carry);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(ReadError::BadRequest(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                // Clean close between requests: the keep-alive peer is
                // simply done.
                return Err(ReadError::Closed);
            }
            return Err(ReadError::BadRequest(
                "connection closed before the request head completed".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::BadRequest("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ReadError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ReadError::BadRequest("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::BadRequest(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::BadRequest(format!("malformed header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = HttpRequest {
        method,
        path,
        version: version.to_string(),
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::BadRequest(
            "chunked transfer encoding is not supported; send Content-Length".into(),
        ));
    }

    let content_length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::BadRequest(format!("bad Content-Length `{v}`")))?,
    };
    let body_start = (head_end + 4).min(buf.len());
    if content_length > max_body {
        return Err(ReadError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
            buffered: buf.len() - body_start,
        });
    }

    // The body may have arrived partly (or wholly) with the head; bytes
    // beyond it belong to the next pipelined request and go back into the
    // carry buffer.
    let available = buf.len() - body_start;
    if available >= content_length {
        request.body = buf[body_start..body_start + content_length].to_vec();
        carry.extend_from_slice(&buf[body_start + content_length..]);
    } else {
        let mut body = buf[body_start..].to_vec();
        body.resize(content_length, 0);
        stream.read_exact(&mut body[available..])?;
        request.body = body;
    }
    Ok(request)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write one JSON response with `Connection: close` semantics (the
/// one-shot form; keep-alive servers use [`write_response_opts`]).
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write_response_opts(stream, status, false, &[], body)
}

/// Write one JSON response, advertising `Connection: keep-alive` when
/// `keep_alive` is set (the connection stays usable for the next
/// request) and emitting any `extra` headers (e.g. `Retry-After` on a
/// 503, or the router's shard/cache annotations).
pub fn write_response_opts(
    stream: &mut impl Write,
    status: u16,
    keep_alive: bool,
    extra: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A client-side response: status code, headers and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// The response status code.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl HttpResponse {
    /// Case-insensitive header lookup (names are stored lower-cased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the server will keep the connection open after this
    /// response (`Connection: keep-alive`).
    pub fn keep_alive(&self) -> bool {
        self.header("connection")
            .is_some_and(|c| c.eq_ignore_ascii_case("keep-alive"))
    }
}

/// Perform one HTTP request against `addr` (connect, send with
/// `Connection: close`, read the full response, close), with `timeout`
/// applied to connect and to each read. The one-shot client; for
/// connection reuse see [`ClientConn`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // A server may reject mid-upload (e.g. 413 on the declared length)
    // and close its read side; keep any write error aside and try to read
    // the response anyway — it is only fatal if no response arrived.
    let written = stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(body.as_bytes()))
        .and_then(|_| stream.flush());

    let mut raw = Vec::new();
    let read = stream.read_to_end(&mut raw);
    if raw.is_empty() {
        written?;
        read?;
    }
    parse_response(&raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn parse_response_head(head: &str) -> Result<(u16, Vec<(String, String)>), String> {
    let mut lines = head.lines();
    let status_line = lines.next().ok_or("empty response")?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed response header `{line}`"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((status, headers))
}

fn parse_response(raw: &[u8]) -> Result<HttpResponse, String> {
    let head_end = find_head_end(raw).ok_or("response head never completed")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "response head not UTF-8")?;
    let (status, headers) = parse_response_head(head)?;
    let body = std::str::from_utf8(&raw[head_end + 4..])
        .map_err(|_| "response body not UTF-8")?
        .to_string();
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Read one `Content-Length`-framed response from a keep-alive stream
/// (cannot read to EOF — the connection stays open). Bytes read beyond
/// this response stay in `carry` for the next read.
fn read_response(stream: &mut impl Read, carry: &mut Vec<u8>) -> io::Result<HttpResponse> {
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut buf = std::mem::take(carry);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(invalid("response head too large".into()));
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the response head completed",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| invalid("response head not UTF-8".into()))?;
    let (status, headers) = parse_response_head(head).map_err(invalid)?;
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .ok_or_else(|| invalid("keep-alive response without Content-Length".into()))?;
    let body_start = (head_end + 4).min(buf.len());
    let available = buf.len() - body_start;
    let body = if available >= content_length {
        carry.extend_from_slice(&buf[body_start + content_length..]);
        buf[body_start..body_start + content_length].to_vec()
    } else {
        let mut body = buf[body_start..].to_vec();
        body.resize(content_length, 0);
        stream.read_exact(&mut body[available..])?;
        body
    };
    let body = String::from_utf8(body).map_err(|_| invalid("response body not UTF-8".into()))?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// One keep-alive client connection: requests sent through it reuse the
/// TCP connection as long as the server allows, reconnecting lazily when
/// the server closed it in between (an idle-timeout race every keep-alive
/// client must tolerate). The stale-connection retry re-sends at most
/// once, and only when the failed attempt ran on a *reused* connection —
/// a fresh connection's failure is reported, not retried. Safe for
/// idempotent requests (deterministic solves, reads); **non-idempotent**
/// requests — a stream batch advances session state — must go through
/// [`ClientConn::request_with`] with `retry_stale: false`, so a failure
/// surfaces as a transport error the caller recovers from by
/// close-and-replay instead of a blind re-send that could execute twice.
#[derive(Debug)]
pub struct ClientConn {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
    carry: Vec<u8>,
}

impl ClientConn {
    /// A (not yet connected) keep-alive client for `addr`; `timeout`
    /// applies to connect, each read, and each write.
    pub fn new(addr: SocketAddr, timeout: Duration) -> Self {
        ClientConn {
            addr,
            timeout,
            stream: None,
            carry: Vec::new(),
        }
    }

    /// The target address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a live connection is currently held.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Update the timeout for subsequent requests: applied to the held
    /// stream immediately and to any future reconnect. This is what lets
    /// a *pooled* connection honor a per-request deadline budget instead
    /// of the timeout it was created with (zero is clamped up to 1 ms —
    /// `set_read_timeout(Some(0))` is an error).
    pub fn set_timeout(&mut self, timeout: Duration) {
        let timeout = timeout.max(Duration::from_millis(1));
        self.timeout = timeout;
        if let Some(stream) = &self.stream {
            if stream.set_read_timeout(Some(timeout)).is_err()
                || stream.set_write_timeout(Some(timeout)).is_err()
            {
                self.stream = None;
            }
        }
    }

    /// Perform one request, reusing the held connection when possible
    /// (idempotent form: a stale reused connection is retried once).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        self.request_with(method, path, body, &[], true)
    }

    /// [`ClientConn::request`] with extra request headers (e.g. the
    /// propagated `X-RI-Deadline-Ms` budget) and explicit stale-retry
    /// control: pass `retry_stale: false` for non-idempotent requests
    /// (stream batches), so a mid-request connection failure is
    /// reported instead of blindly re-sent — the request may already
    /// have executed server-side even though no response arrived.
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra: &[(&str, &str)],
        retry_stale: bool,
    ) -> io::Result<HttpResponse> {
        let reused = self.stream.is_some();
        match self.request_once(method, path, body, extra) {
            Ok(resp) => Ok(resp),
            Err(e) if reused && retry_stale => {
                // The held connection was stale (server idle-closed it);
                // retry exactly once on a fresh one.
                self.stream = None;
                let _ = e;
                self.request_once(method, path, body, extra)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra: &[(&str, &str)],
    ) -> io::Result<HttpResponse> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.carry.clear();
            self.stream = Some(stream);
        }
        let result = {
            let stream = self.stream.as_mut().expect("connected above");
            let body = body.unwrap_or("");
            use std::fmt::Write as _;
            let mut head = format!(
                "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n",
                self.addr,
                body.len()
            );
            for (name, value) in extra {
                let _ = write!(head, "{name}: {value}\r\n");
            }
            head.push_str("\r\n");
            stream
                .write_all(head.as_bytes())
                .and_then(|_| stream.write_all(body.as_bytes()))
                .and_then(|_| stream.flush())
                .and_then(|_| read_response(stream, &mut self.carry))
        };
        match result {
            Ok(resp) => {
                if !resp.keep_alive() {
                    self.stream = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /solve?x=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut &raw[..], 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.version, "HTTP/1.1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..], 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn keep_alive_honors_connection_header_and_version() {
        let close = b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!read_request(&mut &close[..], 64).unwrap().keep_alive());
        let ka10 = b"GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n";
        assert!(read_request(&mut &ka10[..], 64).unwrap().keep_alive());
        let plain10 = b"GET /x HTTP/1.0\r\n\r\n";
        assert!(!read_request(&mut &plain10[..], 64).unwrap().keep_alive());
    }

    #[test]
    fn carry_buffer_preserves_pipelined_requests() {
        let raw =
            b"POST /solve HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /healthz HTTP/1.1\r\n\r\n";
        let mut stream = &raw[..];
        let mut carry = Vec::new();
        let first = read_request_buffered(&mut stream, &mut carry, 1024).unwrap();
        assert_eq!(first.body, b"abc");
        assert!(!carry.is_empty(), "pipelined bytes stay in the carry");
        let second = read_request_buffered(&mut stream, &mut carry, 1024).unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert!(carry.is_empty());
        // A clean close after the last request reads as Closed.
        assert!(matches!(
            read_request_buffered(&mut stream, &mut carry, 1024),
            Err(ReadError::Closed)
        ));
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let raw = b"POST /solve HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        match read_request(&mut &raw[..], 1024) {
            Err(ReadError::BodyTooLarge {
                declared,
                limit,
                buffered,
            }) => {
                assert_eq!(declared, 999999);
                assert_eq!(limit, 1024);
                assert_eq!(buffered, 0);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }

        // Body bytes that arrived with the head are reported so the
        // caller's drain does not re-request (and stall on) them.
        let coalesced = b"POST /solve HTTP/1.1\r\nContent-Length: 999999\r\n\r\nabcdefgh";
        match read_request(&mut &coalesced[..], 1024) {
            Err(ReadError::BodyTooLarge { buffered, .. }) => assert_eq!(buffered, 8),
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_and_unsupported_features() {
        for raw in [
            &b"NOT A REQUEST\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
        ] {
            assert!(
                matches!(
                    read_request(&mut &raw[..], 1024),
                    Err(ReadError::BadRequest(_))
                ),
                "input: {}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn response_writer_and_parser_agree() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}").unwrap();
        let resp = parse_response(&out).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"ok\":true}");
        assert!(!resp.keep_alive());
        assert!(String::from_utf8_lossy(&out).contains("Connection: close"));
    }

    #[test]
    fn keep_alive_responses_carry_extra_headers_and_frame_by_length() {
        let mut out = Vec::new();
        write_response_opts(&mut out, 503, true, &[("Retry-After", "1")], "{}").unwrap();
        let mut carry = Vec::new();
        let resp = read_response(&mut &out[..], &mut carry).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.keep_alive());
        assert_eq!(resp.body, "{}");

        // Two framed responses on one stream read back one at a time
        // (the over-read second response survives in the carry).
        let mut two = Vec::new();
        write_response_opts(&mut two, 200, true, &[], "{\"a\":1}").unwrap();
        write_response_opts(&mut two, 200, true, &[], "{\"b\":2}").unwrap();
        let mut stream = &two[..];
        let mut carry = Vec::new();
        let first = read_response(&mut stream, &mut carry).unwrap();
        assert_eq!(first.body, "{\"a\":1}");
        let second = read_response(&mut stream, &mut carry).unwrap();
        assert_eq!(second.body, "{\"b\":2}");
        assert!(carry.is_empty());
    }
}
