//! # `ri-serve` — the batched serving layer over the problem registry
//!
//! The ROADMAP's serving milestone: an HTTP/1.1-over-TCP transport for the
//! `{problem, workload, config}` → `{summary, report}` contract the `ri`
//! CLI fixed in PR 2, built on the PR 3 persistent thread pool. std-only,
//! dependency-free, `#![forbid(unsafe_code)]`.
//!
//! ## Endpoints
//!
//! * `POST /solve` — a [`ServeRequest`] JSON body; answers with a
//!   [`ServeResponse`] (200) or a structured [`ServeError`] (4xx/5xx).
//! * `POST /stream` — open a streaming session from a [`StreamSpec`]
//!   body; `POST /stream/<id>/batch` feeds it (a [`BatchRequest`] body,
//!   answered with the batch's delta + per-batch trace), `GET
//!   /stream/<id>` inspects it, `DELETE /stream/<id>` closes it. See
//!   [`session`] for lifecycle, admission and eviction.
//! * `GET /problems` — the registry listing (names + descriptions).
//! * `POST /admin/chaos` / `GET /admin/chaos` — install, clear, or
//!   inspect the deterministic fault-injection plan
//!   ([`ri_core::engine::faults::FaultPlan`]): seeded per-request
//!   latency/stall/drop/503/crash faults for chaos soaks. Admin and
//!   health paths are never themselves faulted.
//! * `GET /healthz` — liveness plus queue observability (depth, inflight,
//!   served counts), session counters (`sessions_open`,
//!   `sessions_evicted`, `batches_served`, scratch rollups), the
//!   server's `shard_id` and build `version`; served directly by the
//!   connection thread, so it never waits behind in-flight solves.
//!
//! Connections are persistent: the handler honors HTTP/1.1
//! `Connection: keep-alive` (and advertises it back), serving any number
//! of requests per connection — what lets the `ri-router` front tier and
//! `loadgen` reuse one TCP connection per backend instead of paying a
//! connect per solve.
//!
//! ## The batching executor
//!
//! The paper's algorithms tolerate batched, out-of-order execution — the
//! whole point of the low-dependence-depth analysis — which is what makes
//! concurrent requests safe to multiplex onto shared compute. The server
//! exploits that with a three-stage design:
//!
//! 1. **Admission**: each `POST /solve` passes a `max_inflight` gate
//!    (everything admitted but not yet answered counts); past it, the
//!    request is rejected immediately with `503 overloaded` rather than
//!    queued without bound.
//! 2. **The MPSC queue**: admitted requests are enqueued with their
//!    arrival time. A fixed set of **executor threads** drains the queue;
//!    a request that waited past `deadline_ms` is answered
//!    `504 deadline-exceeded` without being solved.
//! 3. **One pool per server**: at startup the server resolves
//!    `cfg.threads` and builds its pool through [`Runner::pool`] (the
//!    process-wide cache keyed by width); every parallel solve is
//!    clamped to that pool's width, so N concurrent requests share one
//!    set of pool workers instead of building per-request pools (the
//!    spawn-counter regression test asserts exactly this). Pool choice
//!    is explicit per-[`ServeConfig`], not first-call-wins process
//!    state: several in-process servers (as the router tests spawn) can
//!    pin different widths.
//!
//! Shutdown is graceful: the acceptor stops, queued requests drain
//! through the executors (each still gets its response), and worker
//! threads are joined.

#![forbid(unsafe_code)]

pub mod http;
pub mod session;

use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ri_core::engine::envelope::{ServeError, ServeErrorKind, ServeRequest, ServeResponse};
use ri_core::engine::faults::{FaultKind, FaultPlan, DEADLINE_HEADER, RETRY_AFTER_MS_HEADER};
use ri_core::engine::json::{self, Value};
use ri_core::engine::session::{BatchRequest, StreamSpec};
use ri_core::engine::{ExecMode, Registry, Runner};

use http::{read_request_buffered, write_response_opts, ReadError};
use session::{SessionConfig, SessionManager};

/// Server tuning knobs. Every field has a serving-sensible default;
/// `addr` `"127.0.0.1:0"` binds an ephemeral port (read it back from
/// [`Server::local_addr`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, `host:port` (`port` 0 = ephemeral).
    pub addr: String,
    /// Width of the shared solve pool (`0` = machine default). Parallel
    /// requests are clamped to this width; the echoed `config.threads`
    /// documents the effective value.
    pub threads: usize,
    /// Executor threads draining the solve queue (how many solves run
    /// concurrently).
    pub executors: usize,
    /// Admission gate: maximum requests admitted but not yet answered
    /// (queued + executing). Beyond it, `/solve` answers `503`.
    pub max_inflight: usize,
    /// Queue-wait deadline: a request still queued after this many
    /// milliseconds is answered `504` without being solved.
    pub deadline_ms: u64,
    /// Maximum accepted `/solve` body size in bytes (larger bodies are
    /// answered `413` without being read).
    pub max_body_bytes: usize,
    /// Maximum simultaneous connection-handler threads. Connections
    /// beyond it are answered `503` directly from the acceptor, so the
    /// admission gate cannot be bypassed by opening sockets that never
    /// reach `/solve`.
    pub max_connections: usize,
    /// This server's shard identity, echoed in `/healthz` (empty for a
    /// standalone server; the `ri-router` front tier assigns one per
    /// backend and verifies it on health polls).
    pub shard_id: String,
    /// Maximum simultaneously open streaming sessions (`POST /stream`
    /// past it answers `503`).
    pub max_sessions: usize,
    /// Idle streaming sessions are evicted after this many milliseconds.
    pub session_ttl_ms: u64,
    /// Per-session resident-byte cap for streaming state.
    pub session_bytes: usize,
    /// Initial fault-injection plan (the `--chaos` flag); also settable
    /// at runtime via `POST /admin/chaos`. `None` = no chaos.
    pub chaos: Option<FaultPlan>,
    /// Whether a `crash-after` fault exits the process (the `ri-serve`
    /// binary does; in-process test servers emulate the crash by going
    /// dark — dropping every connection without a byte — instead).
    pub chaos_exit: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            executors: 2,
            max_inflight: 64,
            deadline_ms: 30_000,
            max_body_bytes: 1 << 20,
            max_connections: 256,
            shard_id: String::new(),
            max_sessions: 64,
            session_ttl_ms: 300_000,
            session_bytes: 64 << 20,
            chaos: None,
            chaos_exit: false,
        }
    }
}

/// One queued solve: the parsed request, when it was admitted, its
/// effective queue-wait deadline (the server default clamped by any
/// propagated `X-RI-Deadline-Ms` budget), and the channel its response
/// goes back on.
struct Job {
    request: ServeRequest,
    enqueued: Instant,
    deadline_ms: u64,
    reply: SyncSender<Result<ServeResponse, ServeError>>,
}

/// Runtime fault-injection state: the active plan (swappable via
/// `POST /admin/chaos`), the monotone request index that keys the
/// schedule, and the per-class injection counters surfaced in
/// `/healthz`. Installing a plan resets the index, so a chaos phase
/// always starts at schedule position 0.
struct ChaosState {
    plan: Mutex<Option<Arc<FaultPlan>>>,
    index: AtomicU64,
    injected_latency: AtomicU64,
    injected_stall: AtomicU64,
    injected_drop: AtomicU64,
    injected_error: AtomicU64,
    /// Set once a `crash-after` budget is exhausted: the shard goes dark
    /// (every connection dropped without a byte) until a new plan is
    /// installed in-process or the process is restarted.
    crashed: AtomicBool,
}

impl ChaosState {
    fn new(plan: Option<FaultPlan>) -> Self {
        ChaosState {
            plan: Mutex::new(plan.map(Arc::new)),
            index: AtomicU64::new(0),
            injected_latency: AtomicU64::new(0),
            injected_stall: AtomicU64::new(0),
            injected_drop: AtomicU64::new(0),
            injected_error: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }
    }

    /// Swap the active plan (None clears), resetting the schedule index,
    /// the injection counters, and an emulated crash.
    fn install(&self, plan: Option<FaultPlan>) {
        *lock(&self.plan) = plan.map(Arc::new);
        self.index.store(0, Ordering::SeqCst);
        self.injected_latency.store(0, Ordering::SeqCst);
        self.injected_stall.store(0, Ordering::SeqCst);
        self.injected_drop.store(0, Ordering::SeqCst);
        self.injected_error.store(0, Ordering::SeqCst);
        self.crashed.store(false, Ordering::SeqCst);
    }

    /// Draw the fault for the next faultable request (if a plan is
    /// active), advancing the schedule index and counting the injection.
    fn next_fault(&self) -> Option<FaultKind> {
        let plan = lock(&self.plan).clone()?;
        let index = self.index.fetch_add(1, Ordering::SeqCst);
        let fault = plan.fault_for(index)?;
        match fault {
            FaultKind::Latency { .. } => &self.injected_latency,
            FaultKind::Stall { .. } => &self.injected_stall,
            FaultKind::DropMidResponse => &self.injected_drop,
            FaultKind::Err503 => &self.injected_error,
            FaultKind::Crash => {
                self.crashed.store(true, Ordering::SeqCst);
                return Some(fault);
            }
        }
        .fetch_add(1, Ordering::SeqCst);
        Some(fault)
    }
}

/// State shared by the acceptor, connection threads and executors.
struct Shared {
    registry: Registry,
    cfg: ServeConfig,
    /// Effective width of the shared pool (resolved from `cfg.threads`).
    pool_width: usize,
    /// Sender side of the solve queue; taken (set to `None`) at shutdown
    /// so executors see disconnect once the queue drains and late
    /// arrivals are answered `503`.
    queue_tx: Mutex<Option<Sender<Job>>>,
    /// Jobs enqueued but not yet picked up by an executor.
    queue_depth: AtomicUsize,
    /// Requests admitted but not yet answered (queued + executing).
    inflight: AtomicUsize,
    /// Successfully solved requests.
    served: AtomicUsize,
    /// Requests answered with an error envelope.
    errored: AtomicUsize,
    /// Set once shutdown begins (health reports `draining`).
    draining: AtomicBool,
    /// Open connection threads (shutdown waits for them briefly).
    connections: AtomicUsize,
    /// The streaming session store (`/stream` endpoints).
    sessions: SessionManager,
    /// Fault-injection state (`--chaos` / `POST /admin/chaos`).
    chaos: ChaosState,
    /// Cumulative wall-milliseconds executors spent inside solves — the
    /// numerator of the mean-service-time estimate behind the
    /// pressure-derived `Retry-After`.
    busy_ms: AtomicU64,
    /// Requests answered `504 deadline-exceeded` (queue wait or an
    /// exhausted propagated budget).
    deadline_expired: AtomicU64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running server: owns the acceptor and executor threads. Dropping a
/// `Server` without calling [`Server::shutdown`] detaches them (the
/// process-exit path for the `ri-serve` binary); `shutdown` stops
/// accepting, drains the queue, and joins everything.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, install the shared pool, and start the acceptor and
    /// executor threads. Returns once the listener is accepting.
    pub fn start(registry: Registry, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        // ONE pool for this server, built now: per-request solves reuse
        // it instead of paying pool construction. The width comes from
        // this config alone (0 = machine default) — other servers in the
        // same process are free to pin different widths.
        let pool = Runner::pool(cfg.threads);
        let pool_width = pool.current_num_threads();

        let (tx, rx) = mpsc::channel::<Job>();
        let sessions = SessionManager::new(SessionConfig {
            max_sessions: cfg.max_sessions,
            idle_ttl_ms: cfg.session_ttl_ms,
            max_session_bytes: cfg.session_bytes,
        });
        let chaos = ChaosState::new(cfg.chaos.clone());
        let shared = Arc::new(Shared {
            registry,
            pool_width,
            queue_tx: Mutex::new(Some(tx)),
            queue_depth: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            served: AtomicUsize::new(0),
            errored: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            sessions,
            chaos,
            busy_ms: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            cfg,
        });

        let executors = {
            let rx = Arc::new(Mutex::new(rx));
            (0..shared.cfg.executors.max(1))
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    let rx = Arc::clone(&rx);
                    std::thread::Builder::new()
                        .name(format!("ri-serve-exec-{i}"))
                        .spawn(move || executor_loop(&shared, &rx))
                        .expect("spawning an executor thread")
                })
                .collect()
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ri-serve-accept".into())
                .spawn(move || acceptor_loop(&shared, listener))
                .expect("spawning the acceptor thread")
        };

        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            executors,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Width of the shared solve pool.
    pub fn pool_width(&self) -> usize {
        self.shared.pool_width
    }

    /// Install (or clear, with `""`/`"off"`) a fault-injection plan —
    /// the in-process equivalent of `POST /admin/chaos`. Resets the
    /// schedule index, injection counters, and any emulated crash.
    pub fn set_chaos(&self, spec: &str) -> Result<(), String> {
        let plan = FaultPlan::parse(spec)?;
        self.shared.chaos.install(plan);
        Ok(())
    }

    /// Graceful shutdown: stop accepting, answer everything already
    /// admitted (the executors drain the queue), and join all threads.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Late /solve arrivals now get `503 overloaded`; dropping the
        // sole sender means the executors see disconnect — and exit —
        // as soon as the already-queued jobs are drained and answered.
        *lock(&self.shared.queue_tx) = None;
        // Wake the acceptor's blocking accept with a throwaway
        // connection (it answers a quick `503 draining` and exits). Only
        // join if a wake attempt landed — otherwise the acceptor may
        // still be parked in accept(), and joining would hang forever;
        // leaving it detached is safe (it exits on the next connection).
        let woken =
            (0..3).any(|_| TcpStream::connect_timeout(&self.addr, Duration::from_secs(1)).is_ok());
        if let Some(acceptor) = self.acceptor.take() {
            if woken {
                let _ = acceptor.join();
            }
        }
        for exec in self.executors.drain(..) {
            let _ = exec.join();
        }
        // Give open connection threads (e.g. a client still reading its
        // response) a moment to finish.
        let t0 = Instant::now();
        while self.shared.connections.load(Ordering::SeqCst) > 0
            && t0.elapsed() < Duration::from_secs(5)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            // Whether this is the shutdown wake-up or a real client that
            // raced the drain flag: answer, don't drop.
            reject_connection(shared, stream, "server is draining");
            break;
        }
        // Cap handler threads: the /solve admission gate cannot protect
        // thread/memory budgets from connections that never send a
        // request, so the acceptor itself sheds beyond the limit.
        if shared.connections.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            reject_connection(shared, stream, "connection limit reached; retry later");
            continue;
        }
        shared.connections.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("ri-serve-conn".into())
            .spawn(move || {
                handle_connection(&conn_shared, stream);
                conn_shared.connections.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            // Thread exhaustion: shed the connection instead of dying.
            shared.connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Answer a connection the acceptor cannot hand to a handler thread with
/// a quick `503` envelope (short write timeout — the acceptor must never
/// block on a slow peer).
fn reject_connection(shared: &Shared, mut stream: TcpStream, why: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    respond_error(
        shared,
        &mut stream,
        &ServeError::new(ServeErrorKind::Overloaded, why),
        false,
    );
}

/// Per-connection protocol: read requests off the connection for as long
/// as the client keeps it alive (HTTP/1.1 persistent connections; the
/// carry buffer keeps pipelined bytes between reads), routing each and
/// writing one JSON response per request. Errors become structured
/// [`ServeError`] bodies — never silent connection drops — and close the
/// connection afterwards, since framing beyond a malformed request is
/// unknowable.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    // Socket timeouts derive from the queue deadline, not a magic 10 s:
    // a client is given at least the full deadline window to feed or
    // drain a request before the socket gives up on it.
    let io_timeout = Duration::from_millis(shared.cfg.deadline_ms.max(10_000));
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let _ = stream.set_nodelay(true);

    let mut carry = Vec::new();
    loop {
        // An emulated crash (in-process `crash-after`): the shard is
        // dark — drop the connection without a byte, exactly like a dead
        // process's RSTs look to the peer.
        if shared.chaos.crashed.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let request =
            match read_request_buffered(&mut stream, &mut carry, shared.cfg.max_body_bytes) {
                Ok(r) => r,
                Err(e) => {
                    let err = match e {
                        // The client finished and closed between requests:
                        // the normal end of a keep-alive connection.
                        ReadError::Closed => return,
                        ReadError::BodyTooLarge {
                            declared,
                            limit,
                            buffered,
                        } => {
                            // Drain (bounded) what the client is still sending so
                            // the 413 is not lost to a connection reset mid-write.
                            // Body bytes that arrived with the head are already
                            // consumed — re-requesting them would stall until the
                            // read timeout.
                            drain(&mut stream, declared.saturating_sub(buffered).min(4 << 20));
                            ServeError::new(
                                ServeErrorKind::BodyTooLarge,
                                format!("body of {declared} bytes exceeds the {limit}-byte limit"),
                            )
                        }
                        ReadError::BadRequest(msg) => ServeError::bad_request(msg),
                        // A socket error mid-read (including the 10s idle
                        // timeout on a quiet keep-alive connection) has no
                        // client left to answer.
                        ReadError::Io(_) => return,
                    };
                    respond_error(shared, &mut stream, &err, false);
                    return;
                }
            };

        // Honor the client's keep-alive preference, but force the final
        // response of a draining server to close.
        let keep_alive = request.keep_alive() && !shared.draining.load(Ordering::SeqCst);

        // The propagated end-to-end budget (router ingress sets it,
        // decrementing per hop): clamps this request's queue deadline.
        let budget_ms = request
            .header(DEADLINE_HEADER)
            .and_then(|v| v.trim().parse::<u64>().ok());

        // Fault injection applies to the request-serving paths only —
        // never to health polls or chaos administration, so an operator
        // (and the router's health loop) can always see and steer a
        // chaotic shard.
        let method = request.method.as_str();
        let path = request.path.as_str();
        let faultable = matches!((method, path), ("POST", "/solve") | ("POST", "/stream"))
            || (method == "POST"
                && path.strip_prefix("/stream/").is_some_and(|r| !r.is_empty())
                && path.ends_with("/batch"));
        let fault = if faultable {
            shared.chaos.next_fault()
        } else {
            None
        };
        let mut write_fault = None;
        match fault {
            Some(FaultKind::Crash) => {
                if shared.cfg.chaos_exit {
                    std::process::exit(3);
                }
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Some(FaultKind::Latency { ms }) => std::thread::sleep(Duration::from_millis(ms)),
            Some(FaultKind::Err503) => {
                let err = ServeError::new(
                    ServeErrorKind::Overloaded,
                    "chaos: injected spurious 503; retry elsewhere",
                );
                respond_error(
                    shared,
                    &mut ChaosWriter::new(&stream, None),
                    &err,
                    keep_alive,
                );
                if !keep_alive {
                    return;
                }
                continue;
            }
            Some(f @ (FaultKind::Stall { .. } | FaultKind::DropMidResponse)) => {
                write_fault = Some(f);
            }
            None => {}
        }

        // All responses for this request flow through one chaos-aware
        // writer, so stall/drop faults apply uniformly wherever the
        // handler answers from.
        let mut out = ChaosWriter::new(&stream, write_fault);
        match (method, path) {
            ("POST", "/solve") => {
                handle_solve(shared, &mut out, &request.body, keep_alive, budget_ms)
            }
            ("POST", "/stream") => handle_stream_open(shared, &mut out, &request.body, keep_alive),
            (method, path) if path.strip_prefix("/stream/").is_some_and(|r| !r.is_empty()) => {
                handle_stream_session(shared, &mut out, method, path, &request.body, keep_alive)
            }
            ("GET", "/healthz") => {
                let body = health_value(shared).write();
                let _ = write_response_opts(&mut out, 200, keep_alive, &[], &body);
            }
            ("GET", "/problems") => {
                let body = problems_value(&shared.registry).write();
                let _ = write_response_opts(&mut out, 200, keep_alive, &[], &body);
            }
            ("POST", "/admin/chaos") => {
                handle_chaos_admin(shared, &mut out, &request.body, keep_alive)
            }
            ("GET", "/admin/chaos") => {
                let body = chaos_value(shared).write();
                let _ = write_response_opts(&mut out, 200, keep_alive, &[], &body);
            }
            (_, "/solve")
            | (_, "/stream")
            | (_, "/healthz")
            | (_, "/problems")
            | (_, "/admin/chaos") => {
                let err = ServeError::new(
                    ServeErrorKind::MethodNotAllowed,
                    format!("{} is not supported on {}", request.method, request.path),
                );
                respond_error(shared, &mut out, &err, keep_alive);
            }
            (_, path) => {
                let err = ServeError::new(
                    ServeErrorKind::NotFound,
                    format!(
                        "no such path `{path}`; try POST /solve, POST /stream, \
                         GET /problems, GET /healthz"
                    ),
                );
                respond_error(shared, &mut out, &err, keep_alive);
            }
        }
        if out.severed() || !keep_alive {
            return;
        }
    }
}

/// A per-request response writer that can inject write-side faults: it
/// buffers the response and applies the fault at flush — `Stall` writes
/// the head, holds, then completes; `DropMidResponse` writes the head
/// plus half the body and severs the connection, leaving the peer with
/// a truncated `Content-Length` frame (a transport error, not a
/// structured envelope — exactly what a mid-response crash looks like).
struct ChaosWriter<'a> {
    stream: &'a TcpStream,
    fault: Option<FaultKind>,
    buf: Vec<u8>,
    severed: bool,
}

impl<'a> ChaosWriter<'a> {
    fn new(stream: &'a TcpStream, fault: Option<FaultKind>) -> Self {
        ChaosWriter {
            stream,
            fault,
            buf: Vec::new(),
            severed: false,
        }
    }

    /// Whether a drop fault severed the connection (the keep-alive loop
    /// must end; there is no usable framing left).
    fn severed(&self) -> bool {
        self.severed
    }
}

impl Write for ChaosWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        let data = std::mem::take(&mut self.buf);
        if data.is_empty() {
            return Ok(());
        }
        let head_end = data
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map_or(0, |p| p + 4);
        let mut out = self.stream;
        match self.fault.take() {
            Some(FaultKind::Stall { ms }) => {
                out.write_all(&data[..head_end])?;
                out.flush()?;
                std::thread::sleep(Duration::from_millis(ms));
                out.write_all(&data[head_end..])?;
                out.flush()
            }
            Some(FaultKind::DropMidResponse) => {
                let cut = head_end + (data.len() - head_end) / 2;
                let _ = out.write_all(&data[..cut]);
                let _ = out.flush();
                let _ = self.stream.shutdown(Shutdown::Both);
                self.severed = true;
                Ok(())
            }
            _ => {
                out.write_all(&data)?;
                out.flush()
            }
        }
    }
}

/// `POST /admin/chaos`: install or clear the fault plan at runtime. The
/// body is either `{"spec": "..."}` or a bare spec string; an empty /
/// `"off"` spec clears. Answers with the applied plan (or `null`).
fn handle_chaos_admin(shared: &Arc<Shared>, out: &mut impl Write, body: &[u8], keep_alive: bool) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t.trim(),
        Err(_) => {
            let err = ServeError::bad_request("request body is not UTF-8");
            respond_error(shared, out, &err, keep_alive);
            return;
        }
    };
    let spec = match json::parse(text) {
        Ok(v) => match v.get("spec").and_then(|s| s.as_str()) {
            Some(s) => s.to_string(),
            None => {
                let err = ServeError::bad_request("chaos body wants {\"spec\": \"...\"}");
                respond_error(shared, out, &err, keep_alive);
                return;
            }
        },
        // Not JSON: treat the raw body as the spec itself.
        Err(_) => text.to_string(),
    };
    match FaultPlan::parse(&spec) {
        Ok(plan) => {
            shared.chaos.install(plan);
            let body = chaos_value(shared).write();
            let _ = write_response_opts(out, 200, keep_alive, &[], &body);
        }
        Err(msg) => {
            let err = ServeError::bad_request(msg);
            respond_error(shared, out, &err, keep_alive);
        }
    }
}

/// The `/admin/chaos` document: the active plan (or `null`) plus the
/// schedule index and per-class injection counters.
fn chaos_value(shared: &Shared) -> Value {
    let plan = lock(&shared.chaos.plan)
        .as_ref()
        .map_or(Value::Null, |p| p.to_value());
    Value::Obj(vec![
        ("chaos".into(), plan),
        (
            "index".into(),
            Value::Num(shared.chaos.index.load(Ordering::SeqCst) as f64),
        ),
        (
            "injected_latency".into(),
            Value::Num(shared.chaos.injected_latency.load(Ordering::SeqCst) as f64),
        ),
        (
            "injected_stall".into(),
            Value::Num(shared.chaos.injected_stall.load(Ordering::SeqCst) as f64),
        ),
        (
            "injected_drop".into(),
            Value::Num(shared.chaos.injected_drop.load(Ordering::SeqCst) as f64),
        ),
        (
            "injected_error".into(),
            Value::Num(shared.chaos.injected_error.load(Ordering::SeqCst) as f64),
        ),
        (
            "crashed".into(),
            Value::Bool(shared.chaos.crashed.load(Ordering::SeqCst)),
        ),
    ])
}

/// `POST /solve`: parse, admit, enqueue, wait for the executor's answer.
/// `budget_ms` is the propagated `X-RI-Deadline-Ms` budget (if any): it
/// clamps the queue-wait deadline, and a budget that arrives already
/// exhausted is answered `504` without touching the queue.
fn handle_solve(
    shared: &Arc<Shared>,
    stream: &mut impl Write,
    body: &[u8],
    keep_alive: bool,
    budget_ms: Option<u64>,
) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => {
            let err = ServeError::bad_request("request body is not UTF-8");
            respond_error(shared, stream, &err, keep_alive);
            return;
        }
    };
    let deadline_ms = budget_ms.map_or(shared.cfg.deadline_ms, |b| b.min(shared.cfg.deadline_ms));
    if deadline_ms == 0 {
        let err = ServeError::new(
            ServeErrorKind::DeadlineExceeded,
            "deadline budget exhausted before the request could be queued",
        );
        respond_error(shared, stream, &err, keep_alive);
        return;
    }
    let mut request = match ServeRequest::from_json(text) {
        Ok(r) => r,
        Err(err) => {
            respond_error(shared, stream, &err, keep_alive);
            return;
        }
    };
    // Clamp multi-threaded solves (parallel and relaxed alike) to the
    // shared pool: one pool serves every request, whatever widths clients
    // ask for. The response's config echo documents the effective width.
    if request.config.mode != ExecMode::Sequential {
        request.config.threads = Some(shared.pool_width);
    }

    // Admission gate: bound what is queued + executing.
    if !admit(shared) {
        let err = ServeError::new(
            ServeErrorKind::Overloaded,
            format!(
                "{} requests already in flight (limit {}); retry later",
                shared.inflight.load(Ordering::SeqCst),
                shared.cfg.max_inflight
            ),
        );
        respond_error(shared, stream, &err, keep_alive);
        return;
    }

    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = Job {
        request,
        enqueued: Instant::now(),
        deadline_ms,
        reply: reply_tx,
    };
    let sent = {
        let tx = lock(&shared.queue_tx);
        match tx.as_ref() {
            Some(tx) => {
                shared.queue_depth.fetch_add(1, Ordering::SeqCst);
                tx.send(job).is_ok()
            }
            None => false,
        }
    };
    if !sent {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        let err = ServeError::new(ServeErrorKind::Overloaded, "server is draining");
        respond_error(shared, stream, &err, keep_alive);
        return;
    }

    // The executor always replies (deadline misses and panics included);
    // the generous timeout only guards against executor-thread death.
    let deadline = Duration::from_millis(deadline_ms);
    match reply_rx.recv_timeout(deadline + Duration::from_secs(600)) {
        Ok(Ok(response)) => {
            shared.served.fetch_add(1, Ordering::SeqCst);
            let _ = write_response_opts(stream, 200, keep_alive, &[], &response.to_json());
        }
        Ok(Err(err)) => respond_error(shared, stream, &err, keep_alive),
        Err(_) => {
            let err = ServeError::new(ServeErrorKind::Internal, "executor did not answer");
            respond_error(shared, stream, &err, keep_alive);
        }
    }
}

/// `POST /stream`: open a streaming session. Admission, duplicate-id
/// and byte-cap checks live in the [`SessionManager`]; this handler
/// parses, clamps the config to the shared pool (like `/solve`), and
/// answers with the session-info document.
fn handle_stream_open(
    shared: &Arc<Shared>,
    stream: &mut impl Write,
    body: &[u8],
    keep_alive: bool,
) {
    // A draining server sheds state-advancing stream requests with a
    // retryable error, so a router reopens the session elsewhere instead
    // of parking new state on a shard about to disappear.
    if shared.draining.load(Ordering::SeqCst) {
        let err = ServeError::new(ServeErrorKind::Overloaded, "server is draining");
        respond_error(shared, stream, &err, keep_alive);
        return;
    }
    let parsed = std::str::from_utf8(body)
        .map_err(|_| ServeError::bad_request("request body is not UTF-8"))
        .and_then(StreamSpec::from_json);
    let mut spec = match parsed {
        Ok(s) => s,
        Err(err) => {
            respond_error(shared, stream, &err, keep_alive);
            return;
        }
    };
    if spec.config.mode != ExecMode::Sequential {
        spec.config.threads = Some(shared.pool_width);
    }
    match shared.sessions.open(&shared.registry, spec) {
        Ok(info) => {
            let _ = write_response_opts(stream, 200, keep_alive, &[], &info.write());
        }
        Err(err) => respond_error(shared, stream, &err, keep_alive),
    }
}

/// `/stream/<id>` and `/stream/<id>/batch`: feed, inspect or close one
/// session. Batches run here, on the connection thread — consecutive
/// batches over a keep-alive connection reuse its warm per-thread
/// scratch pools — bounded by the session store's own admission, not
/// the one-shot solve queue.
fn handle_stream_session(
    shared: &Arc<Shared>,
    stream: &mut impl Write,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
) {
    let rest = path.strip_prefix("/stream/").unwrap_or_default();
    let (id, action) = match rest.strip_suffix("/batch") {
        Some(id) => (id, "batch"),
        None => (rest, ""),
    };
    if id.is_empty() || id.contains('/') {
        let err = ServeError::new(
            ServeErrorKind::NotFound,
            format!("no such path `{path}`; try /stream/<id> or /stream/<id>/batch"),
        );
        respond_error(shared, stream, &err, keep_alive);
        return;
    }
    let outcome = match (method, action) {
        // Batches advance session state, so a draining server sheds them
        // retryably (reads and closes below still work — closing frees
        // state, which is exactly what a drain wants). The batch never
        // ran, so a router can safely replay the session elsewhere.
        ("POST", "batch") if shared.draining.load(Ordering::SeqCst) => Err(ServeError::new(
            ServeErrorKind::Overloaded,
            "server is draining",
        )),
        ("POST", "batch") => std::str::from_utf8(body)
            .map_err(|_| ServeError::bad_request("request body is not UTF-8"))
            .and_then(BatchRequest::from_json)
            .and_then(|req| shared.sessions.batch(id, req.count))
            .map(|delta| {
                let mut members = vec![("session".to_string(), Value::Str(id.to_string()))];
                if let Value::Obj(rest) = delta.to_value() {
                    members.extend(rest);
                }
                Value::Obj(members)
            }),
        ("GET", "") => shared.sessions.info(id),
        ("DELETE", "") => shared.sessions.close(id),
        _ => Err(ServeError::new(
            ServeErrorKind::MethodNotAllowed,
            format!("{method} is not supported on {path}"),
        )),
    };
    match outcome {
        Ok(doc) => {
            let _ = write_response_opts(stream, 200, keep_alive, &[], &doc.write());
        }
        Err(err) => respond_error(shared, stream, &err, keep_alive),
    }
}

fn admit(shared: &Shared) -> bool {
    let mut current = shared.inflight.load(Ordering::SeqCst);
    loop {
        if current >= shared.cfg.max_inflight {
            return false;
        }
        match shared.inflight.compare_exchange(
            current,
            current + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return true,
            Err(now) => current = now,
        }
    }
}

/// An executor thread: drain the queue until every sender is gone (which
/// is shutdown's drain-then-exit signal), answering each job exactly once.
fn executor_loop(shared: &Arc<Shared>, rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the receiver lock only for the dequeue itself, so the
        // other executors pick up jobs while this one solves.
        let job = match lock(rx).recv() {
            Ok(job) => job,
            Err(_) => break, // disconnected: queue drained + shutdown
        };
        shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
        let outcome = run_job(shared, &job);
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        // The connection thread may have timed out and gone; that's its
        // loss, not an executor error.
        let _ = job.reply.send(outcome);
    }
}

fn run_job(shared: &Shared, job: &Job) -> Result<ServeResponse, ServeError> {
    let waited = job.enqueued.elapsed();
    let deadline = Duration::from_millis(job.deadline_ms);
    if waited > deadline {
        return Err(ServeError::new(
            ServeErrorKind::DeadlineExceeded,
            format!(
                "request waited {}ms in the queue (deadline {}ms)",
                waited.as_millis(),
                deadline.as_millis()
            ),
        ));
    }
    let req = &job.request;
    let t0 = Instant::now();
    let solved = catch_unwind(AssertUnwindSafe(|| {
        shared
            .registry
            .solve(&req.problem, &req.workload, &req.config)
    }));
    // Feed the mean-service-time estimate behind the pressure-derived
    // `Retry-After` (failures included: they occupied an executor too).
    shared
        .busy_ms
        .fetch_add(t0.elapsed().as_millis() as u64, Ordering::SeqCst);
    match solved {
        Ok(Ok((summary, report))) => Ok(ServeResponse {
            problem: req.problem.clone(),
            workload: req.workload.clone(),
            config: req.config.clone(),
            summary,
            report,
        }),
        Ok(Err(registry_err)) => Err(ServeError::from(registry_err)),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "solve panicked".into());
            Err(ServeError::new(
                ServeErrorKind::Internal,
                format!("solve panicked: {msg}"),
            ))
        }
    }
}

/// Read and discard up to `limit` bytes (stops on error or EOF).
fn drain(stream: &mut impl std::io::Read, limit: usize) {
    let mut remaining = limit;
    let mut buf = [0u8; 8192];
    while remaining > 0 {
        let take = remaining.min(8192);
        match stream.read(&mut buf[..take]) {
            Ok(0) | Err(_) => break,
            Ok(n) => remaining -= n,
        }
    }
}

/// Estimated wait (in milliseconds) until an executor frees up: queue
/// depth × mean service time ÷ executor width, clamped to a sane band.
/// This is what `Retry-After` on a `503` reports — actual queue
/// pressure, not a constant — so a client that honors it returns when
/// the queue has plausibly drained instead of hammering immediately.
fn retry_after_ms(shared: &Shared) -> u64 {
    let served = shared.served.load(Ordering::SeqCst) as u64;
    let busy = shared.busy_ms.load(Ordering::SeqCst);
    // Before any solve completes there is no estimate; assume a short
    // service time rather than a punitive one.
    let mean_ms = busy
        .checked_div(served)
        .map_or(25, |mean| mean.clamp(1, 10_000));
    let waiting = shared.queue_depth.load(Ordering::SeqCst) as u64 + 1;
    let executors = shared.cfg.executors.max(1) as u64;
    (waiting * mean_ms).div_ceil(executors).clamp(25, 30_000)
}

/// Write an error envelope and count it — the ONE counting point for
/// `errored` (and `deadline_expired`), so a failed solve is not
/// double-counted by the executor and the connection thread. Retryable
/// rejections (`503 overloaded`) carry a pressure-derived `Retry-After`
/// (whole seconds, per HTTP) plus the millisecond-precision
/// `X-RI-Retry-After-Ms` the router's backoff and `loadgen` honor.
fn respond_error(shared: &Shared, stream: &mut impl Write, err: &ServeError, keep_alive: bool) {
    shared.errored.fetch_add(1, Ordering::SeqCst);
    if err.kind == ServeErrorKind::DeadlineExceeded {
        shared.deadline_expired.fetch_add(1, Ordering::SeqCst);
    }
    let status = err.http_status();
    let (secs, ms);
    let hint_headers;
    let extra: &[(&str, &str)] = if status == 503 {
        let hint = retry_after_ms(shared);
        secs = hint.div_ceil(1000).max(1).to_string();
        ms = hint.to_string();
        hint_headers = [
            ("Retry-After", secs.as_str()),
            (RETRY_AFTER_MS_HEADER, ms.as_str()),
        ];
        &hint_headers
    } else {
        &[]
    };
    let _ = write_response_opts(stream, status, keep_alive, extra, &err.to_json());
}

/// The `/healthz` document. Assembled from atomics plus one brief
/// session-map lock (never held across a solve or a batch), so health
/// stays responsive under full load.
fn health_value(shared: &Shared) -> Value {
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    let mut members = vec![
        ("status".into(), Value::Str(status.into())),
        ("shard_id".into(), Value::Str(shared.cfg.shard_id.clone())),
        (
            "version".into(),
            Value::Str(env!("CARGO_PKG_VERSION").into()),
        ),
        ("pool_threads".into(), Value::Num(shared.pool_width as f64)),
        (
            "executors".into(),
            Value::Num(shared.cfg.executors.max(1) as f64),
        ),
        (
            "queue_depth".into(),
            Value::Num(shared.queue_depth.load(Ordering::SeqCst) as f64),
        ),
        (
            "inflight".into(),
            Value::Num(shared.inflight.load(Ordering::SeqCst) as f64),
        ),
        (
            "max_inflight".into(),
            Value::Num(shared.cfg.max_inflight as f64),
        ),
        (
            "served".into(),
            Value::Num(shared.served.load(Ordering::SeqCst) as f64),
        ),
        (
            "errored".into(),
            Value::Num(shared.errored.load(Ordering::SeqCst) as f64),
        ),
        (
            "deadline_expired".into(),
            Value::Num(shared.deadline_expired.load(Ordering::SeqCst) as f64),
        ),
        (
            "retry_after_ms".into(),
            Value::Num(retry_after_ms(shared) as f64),
        ),
    ];
    members.extend(shared.sessions.health_members());
    if lock(&shared.chaos.plan).is_some() || shared.chaos.crashed.load(Ordering::SeqCst) {
        members.push(("chaos".into(), chaos_value(shared)));
    }
    Value::Obj(members)
}

/// The `/problems` document: registry names + descriptions, in
/// registration order.
fn problems_value(registry: &Registry) -> Value {
    Value::Obj(vec![(
        "problems".into(),
        Value::Arr(
            registry
                .descriptions()
                .into_iter()
                .map(|(name, description)| {
                    Value::Obj(vec![
                        ("name".into(), Value::Str(name.into())),
                        ("description".into(), Value::Str(description.into())),
                    ])
                })
                .collect(),
        ),
    )])
}
