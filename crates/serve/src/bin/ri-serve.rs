//! `ri-serve` — serve the problem registry over HTTP/1.1.
//!
//! ```text
//! ri-serve [--addr HOST:PORT] [--threads K] [--executors E]
//!          [--max-inflight N] [--deadline-ms MS] [--max-body-bytes B]
//!          [--max-connections C] [--shard-id ID] [--max-sessions S]
//!          [--session-ttl-ms MS] [--session-bytes B] [--chaos SPEC]
//! ```
//!
//! Prints `listening on ADDR` once the listener is up (scripts wait on
//! that line), then serves until killed. Endpoints: `POST /solve`,
//! `POST /stream` (+ `/stream/<id>/batch`, `GET`/`DELETE /stream/<id>`),
//! `GET /problems`, `GET /healthz` — see the `ri_serve` crate docs for
//! the batching/admission model and the streaming session lifecycle.

use parallel_ri::registry;
use ri_serve::{ServeConfig, Server};

fn usage_text() -> &'static str {
    "usage: ri-serve [--addr HOST:PORT] [--threads K] [--executors E]\n\
     \x20              [--max-inflight N] [--deadline-ms MS] [--max-body-bytes B]\n\
     \x20              [--max-connections C] [--shard-id ID] [--max-sessions S]\n\
     \x20              [--session-ttl-ms MS] [--session-bytes B] [--chaos SPEC]\n\
     \n\
     Serves POST /solve ({problem, workload, config} JSON -> {summary, report}),\n\
     POST /stream (+ /stream/<id>/batch, GET/DELETE /stream/<id>),\n\
     GET /problems and GET /healthz. --addr defaults to 127.0.0.1:8077; port 0\n\
     binds an ephemeral port (printed on the `listening on` line). --threads\n\
     sizes the one shared solve pool (0 = machine default); --executors bounds\n\
     concurrent solves; --max-inflight is the admission gate; --deadline-ms\n\
     bounds queue wait; --max-body-bytes bounds request bodies;\n\
     --max-connections bounds simultaneous connection handlers; --shard-id\n\
     names this process in /healthz (set by ri-router when it spawns shards);\n\
     --max-sessions bounds open streaming sessions, --session-ttl-ms their\n\
     idle eviction, --session-bytes each session's resident state. --chaos\n\
     installs a deterministic fault-injection plan (e.g.\n\
     `seed=42,latency=0.2:25,drop=0.1,error=0.1,crash-after=500`; also\n\
     settable at runtime via POST /admin/chaos); a crash-after fault exits\n\
     the process with code 3."
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("ri-serve: {msg}");
    std::process::exit(2);
}

fn parse_config(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:8077".into(),
        // A real process honors crash-after by exiting (in-process test
        // servers emulate the crash by going dark instead).
        chaos_exit: true,
        ..ServeConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(|s| s.to_string())
                .ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--threads" => {
                cfg.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--executors" => {
                cfg.executors = value("--executors")?
                    .parse()
                    .map_err(|e| format!("bad --executors: {e}"))?
            }
            "--max-inflight" => {
                cfg.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("bad --max-inflight: {e}"))?
            }
            "--deadline-ms" => {
                cfg.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("bad --deadline-ms: {e}"))?
            }
            "--max-body-bytes" => {
                cfg.max_body_bytes = value("--max-body-bytes")?
                    .parse()
                    .map_err(|e| format!("bad --max-body-bytes: {e}"))?
            }
            "--max-connections" => {
                cfg.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("bad --max-connections: {e}"))?
            }
            "--shard-id" => cfg.shard_id = value("--shard-id")?,
            "--max-sessions" => {
                cfg.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|e| format!("bad --max-sessions: {e}"))?
            }
            "--session-ttl-ms" => {
                cfg.session_ttl_ms = value("--session-ttl-ms")?
                    .parse()
                    .map_err(|e| format!("bad --session-ttl-ms: {e}"))?
            }
            "--session-bytes" => {
                cfg.session_bytes = value("--session-bytes")?
                    .parse()
                    .map_err(|e| format!("bad --session-bytes: {e}"))?
            }
            "--chaos" => {
                cfg.chaos = ri_core::engine::faults::FaultPlan::parse(&value("--chaos")?)
                    .map_err(|e| format!("bad --chaos: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cfg.executors == 0 || cfg.max_inflight == 0 || cfg.max_connections == 0 {
        return Err("--executors, --max-inflight and --max-connections must be positive".into());
    }
    if cfg.max_sessions == 0 {
        return Err("--max-sessions must be positive".into());
    }
    Ok(cfg)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage_text());
        return;
    }
    let cfg = parse_config(&args).unwrap_or_else(|e| fail(e));
    let server = Server::start(registry(), cfg).unwrap_or_else(|e| fail(format!("bind: {e}")));
    println!("listening on {}", server.local_addr());
    eprintln!(
        "ri-serve: pool width {}, endpoints: POST /solve, POST /stream, GET /problems, GET /healthz",
        server.pool_width()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // Serve until the process is killed; the acceptor and executors are
    // detached by parking this thread forever.
    loop {
        std::thread::park();
    }
}
