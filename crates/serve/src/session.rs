//! The server-side session store for streaming: a bounded, TTL-evicted
//! map of open [`ErasedIncremental`] instances.
//!
//! A session is opened by `POST /stream` with a [`StreamSpec`], holds
//! its problem's incremental state (the full fixed instance plus
//! whatever the adapter maintains between batches), and is fed by
//! `POST /stream/<id>/batch`. Batches run **on the connection thread**
//! rather than through the one-shot solve queue: a streaming client
//! keeps its connection alive, so consecutive batches land on the same
//! thread and reuse its warm per-thread `RoundScratch` pools — the
//! long-lived-runner shape the ROADMAP's streaming item asks for (the
//! solve pool itself is the server-wide shared one; width is clamped at
//! open).
//!
//! Bounds, all enforced here:
//! * `max_sessions` — admission: opening past the cap answers
//!   `503 overloaded` (retryable — another shard may have room).
//! * `idle_ttl_ms` — sessions idle past the TTL are evicted by the
//!   sweep that runs on every open/batch; a busy session (batch in
//!   flight) is never evicted.
//! * `max_session_bytes` — a session whose state estimate exceeds the
//!   cap is rejected at open (it can never fit) and evicted if an
//!   adapter outgrows the cap mid-stream.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ri_core::engine::envelope::{ServeError, ServeErrorKind};
use ri_core::engine::json::Value;
use ri_core::engine::registry::ErasedIncremental;
use ri_core::engine::session::{BatchDelta, StreamSpec};
use ri_core::engine::Registry;

/// Session-store tuning knobs.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Maximum simultaneously open sessions; `POST /stream` past it
    /// answers `503`.
    pub max_sessions: usize,
    /// Idle eviction TTL in milliseconds: a session untouched for this
    /// long is closed by the next sweep.
    pub idle_ttl_ms: u64,
    /// Per-session resident-byte cap (adapter estimate).
    pub max_session_bytes: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_sessions: 64,
            idle_ttl_ms: 300_000,
            max_session_bytes: 64 << 20,
        }
    }
}

/// One open session: identity, the opening spec (config already clamped
/// to the server pool), and the adapter state behind a mutex — batches
/// within a session are serialized, sessions are independent.
struct Session {
    id: String,
    spec: StreamSpec,
    inner: Mutex<SessionInner>,
}

struct SessionInner {
    inc: Box<dyn ErasedIncremental>,
    batches: usize,
    last_used: Instant,
}

impl Session {
    /// The session-info document (`POST /stream` response and
    /// `GET /stream/<id>`): identity + progress + the effective spec.
    fn info(&self, inner: &SessionInner) -> Value {
        Value::Obj(vec![
            ("session".into(), Value::Str(self.id.clone())),
            ("problem".into(), Value::Str(self.spec.problem.clone())),
            ("capacity".into(), Value::Num(inner.inc.capacity() as f64)),
            ("absorbed".into(), Value::Num(inner.inc.absorbed() as f64)),
            ("batches".into(), Value::Num(inner.batches as f64)),
            ("native".into(), Value::Bool(inner.inc.native())),
            (
                "complete".into(),
                Value::Bool(inner.inc.absorbed() == inner.inc.capacity()),
            ),
            (
                "approx_bytes".into(),
                Value::Num(inner.inc.approx_bytes() as f64),
            ),
            ("workload".into(), self.spec.workload.to_value()),
            ("config".into(), self.spec.config.to_value()),
        ])
    }
}

/// The bounded session store plus its lifetime counters (all surfaced
/// in `/healthz`).
pub struct SessionManager {
    cfg: SessionConfig,
    sessions: Mutex<HashMap<String, Arc<Session>>>,
    next_id: AtomicU64,
    opened: AtomicU64,
    evicted: AtomicU64,
    closed: AtomicU64,
    batches: AtomicU64,
    scratch_hits: AtomicU64,
    scratch_misses: AtomicU64,
}

impl SessionManager {
    /// An empty store under `cfg`.
    pub fn new(cfg: SessionConfig) -> Self {
        SessionManager {
            cfg,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            opened: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            scratch_hits: AtomicU64::new(0),
            scratch_misses: AtomicU64::new(0),
        }
    }

    fn lock_sessions(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Session>>> {
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Open a session for `spec` (config already clamped by the caller).
    /// The id is the spec's `session_id` when present (how the router
    /// pins a session to its hash ring before the backend exists), a
    /// fresh `s-<seq>` otherwise. Returns the session-info document.
    pub fn open(&self, registry: &Registry, spec: StreamSpec) -> Result<Value, ServeError> {
        self.sweep();
        let inc = registry
            .construct_incremental(&spec.problem, &spec.workload)
            .map_err(ServeError::from)?;
        if inc.approx_bytes() > self.cfg.max_session_bytes {
            return Err(ServeError::bad_request(format!(
                "session state of ~{} bytes exceeds the per-session cap of {} bytes",
                inc.approx_bytes(),
                self.cfg.max_session_bytes
            )));
        }
        let id = match &spec.session_id {
            Some(id) => id.clone(),
            None => format!("s-{}", self.next_id.fetch_add(1, Ordering::SeqCst) + 1),
        };
        let session = Arc::new(Session {
            id: id.clone(),
            spec,
            inner: Mutex::new(SessionInner {
                inc,
                batches: 0,
                last_used: Instant::now(),
            }),
        });
        let mut sessions = self.lock_sessions();
        if sessions.contains_key(&id) {
            return Err(ServeError::bad_request(format!(
                "session `{id}` is already open"
            )));
        }
        if sessions.len() >= self.cfg.max_sessions {
            return Err(ServeError::new(
                ServeErrorKind::Overloaded,
                format!(
                    "{} sessions already open (limit {}); retry later or elsewhere",
                    sessions.len(),
                    self.cfg.max_sessions
                ),
            ));
        }
        let info = session.info(&session.inner.lock().unwrap_or_else(|e| e.into_inner()));
        sessions.insert(id, session);
        self.opened.fetch_add(1, Ordering::SeqCst);
        Ok(info)
    }

    /// Feed `count` elements to session `id` on the calling thread,
    /// returning the delta. Counts the batch and rolls the batch
    /// report's scratch reuse counters into the store-wide totals.
    pub fn batch(&self, id: &str, count: usize) -> Result<BatchDelta, ServeError> {
        self.sweep();
        let session = self
            .lock_sessions()
            .get(id)
            .cloned()
            .ok_or_else(|| self.no_such_session(id))?;
        let mut inner = session.inner.lock().unwrap_or_else(|e| e.into_inner());
        let (delta, report) = inner
            .inc
            .feed(count, &session.spec.config)
            .map_err(ServeError::bad_request)?;
        inner.batches += 1;
        inner.last_used = Instant::now();
        self.batches.fetch_add(1, Ordering::SeqCst);
        self.scratch_hits
            .fetch_add(report.scratch_hits, Ordering::SeqCst);
        self.scratch_misses
            .fetch_add(report.scratch_misses, Ordering::SeqCst);
        if inner.inc.approx_bytes() > self.cfg.max_session_bytes {
            // The adapter outgrew the cap mid-stream: answer this batch
            // (the work is done) but evict the session so the next batch
            // reopens elsewhere.
            drop(inner);
            self.lock_sessions().remove(&session.id);
            self.evicted.fetch_add(1, Ordering::SeqCst);
        }
        Ok(delta)
    }

    /// The info document for session `id`.
    pub fn info(&self, id: &str) -> Result<Value, ServeError> {
        let session = self
            .lock_sessions()
            .get(id)
            .cloned()
            .ok_or_else(|| self.no_such_session(id))?;
        let inner = session.inner.lock().unwrap_or_else(|e| e.into_inner());
        Ok(session.info(&inner))
    }

    /// Close session `id`, returning its final info document.
    pub fn close(&self, id: &str) -> Result<Value, ServeError> {
        let session = self
            .lock_sessions()
            .remove(id)
            .ok_or_else(|| self.no_such_session(id))?;
        self.closed.fetch_add(1, Ordering::SeqCst);
        let inner = session.inner.lock().unwrap_or_else(|e| e.into_inner());
        Ok(session.info(&inner))
    }

    /// Evict sessions idle past the TTL. A session whose lock is held
    /// (batch in flight) is by definition not idle and is skipped.
    pub fn sweep(&self) {
        let ttl = std::time::Duration::from_millis(self.cfg.idle_ttl_ms);
        let mut sessions = self.lock_sessions();
        let before = sessions.len();
        sessions.retain(|_, s| match s.inner.try_lock() {
            Ok(inner) => inner.last_used.elapsed() <= ttl,
            Err(_) => true,
        });
        let evicted = before - sessions.len();
        if evicted > 0 {
            self.evicted.fetch_add(evicted as u64, Ordering::SeqCst);
        }
    }

    /// Open-session count.
    pub fn open_count(&self) -> usize {
        self.lock_sessions().len()
    }

    /// The `/healthz` members this store contributes (flat keys, so the
    /// router's cluster fold can sum them across shards).
    pub fn health_members(&self) -> Vec<(String, Value)> {
        let count = |x: &AtomicU64| Value::Num(x.load(Ordering::SeqCst) as f64);
        vec![
            ("sessions_open".into(), Value::Num(self.open_count() as f64)),
            ("sessions_opened".into(), count(&self.opened)),
            ("sessions_evicted".into(), count(&self.evicted)),
            ("sessions_closed".into(), count(&self.closed)),
            ("batches_served".into(), count(&self.batches)),
            ("session_scratch_hits".into(), count(&self.scratch_hits)),
            ("session_scratch_misses".into(), count(&self.scratch_misses)),
            (
                "max_sessions".into(),
                Value::Num(self.cfg.max_sessions as f64),
            ),
        ]
    }

    fn no_such_session(&self, id: &str) -> ServeError {
        ServeError::new(
            ServeErrorKind::NotFound,
            format!("no open session `{id}` (it may have been evicted or never opened)"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::{ErasedProblem, OutputSummary, WorkloadSpec};
    use ri_core::engine::{RunConfig, RunReport};

    fn toy_registry() -> Registry {
        struct Toy(usize);
        impl ErasedProblem for Toy {
            fn name(&self) -> &str {
                "toy"
            }
            fn solve_erased(&self, _cfg: &RunConfig) -> (OutputSummary, RunReport) {
                let mut s = OutputSummary::new();
                s.answer_num("n", self.0 as f64);
                let mut report = RunReport::new("toy");
                report.scratch_hits = 3;
                report.scratch_misses = 1;
                (s, report)
            }
        }
        let mut reg = Registry::new();
        reg.register("toy", "toy", |spec| Ok(Box::new(Toy(spec.n))));
        reg
    }

    fn spec(n: usize, id: Option<&str>) -> StreamSpec {
        let mut s = StreamSpec::new("toy");
        s.workload = WorkloadSpec::new(n, 1);
        s.session_id = id.map(String::from);
        s
    }

    #[test]
    fn lifecycle_open_batch_close() {
        let reg = toy_registry();
        let mgr = SessionManager::new(SessionConfig::default());
        let info = mgr.open(&reg, spec(8, None)).unwrap();
        let id = info.get("session").unwrap().as_str().unwrap().to_string();
        assert_eq!(mgr.open_count(), 1);

        let delta = mgr.batch(&id, 5).unwrap();
        assert_eq!((delta.batch, delta.cumulative), (0, 5));
        let delta = mgr.batch(&id, 3).unwrap();
        assert!(delta.complete);
        assert!(mgr.batch(&id, 1).is_err(), "overfeed is a client error");

        let closed = mgr.close(&id).unwrap();
        assert_eq!(closed.get("batches"), Some(&Value::Num(2.0)));
        assert_eq!(mgr.open_count(), 0);
        assert!(mgr
            .batch(&id, 1)
            .unwrap_err()
            .to_json()
            .contains("not-found"));

        // Scratch counters rolled up from the batch reports.
        let health = mgr.health_members();
        let get = |k: &str| {
            health
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_f64().unwrap())
                .unwrap()
        };
        assert_eq!(get("batches_served"), 2.0);
        assert_eq!(get("session_scratch_hits"), 6.0);
        assert_eq!(get("session_scratch_misses"), 2.0);
        assert_eq!(get("sessions_closed"), 1.0);
    }

    #[test]
    fn admission_duplicate_and_ttl() {
        let reg = toy_registry();
        let mgr = SessionManager::new(SessionConfig {
            max_sessions: 2,
            idle_ttl_ms: 0, // everything idle is instantly stale
            ..SessionConfig::default()
        });
        // TTL 0: each open sweeps the previous session away first.
        mgr.open(&reg, spec(8, Some("a"))).unwrap();
        mgr.open(&reg, spec(8, Some("a"))).unwrap(); // evicted + reopened
        assert_eq!(mgr.open_count(), 1);
        let health = mgr.health_members();
        let evicted = health
            .iter()
            .find(|(k, _)| k == "sessions_evicted")
            .map(|(_, v)| v.as_f64().unwrap())
            .unwrap();
        assert!(evicted >= 1.0);

        let mgr = SessionManager::new(SessionConfig {
            max_sessions: 2,
            ..SessionConfig::default()
        });
        mgr.open(&reg, spec(8, Some("a"))).unwrap();
        let dup = mgr.open(&reg, spec(8, Some("a"))).unwrap_err();
        assert!(dup.to_json().contains("already open"));
        mgr.open(&reg, spec(8, Some("b"))).unwrap();
        let full = mgr.open(&reg, spec(8, Some("c"))).unwrap_err();
        assert!(full.to_json().contains("overloaded"));
        assert!(full.retryable, "another shard may have room");
    }

    #[test]
    fn byte_cap_rejects_oversized_sessions() {
        let reg = toy_registry();
        let mgr = SessionManager::new(SessionConfig {
            max_session_bytes: 16, // the fallback estimates 64n
            ..SessionConfig::default()
        });
        let err = mgr.open(&reg, spec(1024, None)).unwrap_err();
        assert!(err.to_json().contains("per-session cap"));
    }
}
