//! Pool-sharing regression test: a burst of concurrent `/solve` requests
//! must run on the ONE cached pool the server installed at startup —
//! asserted with the PR 3 spawn counters — and `GET /healthz` must answer
//! during load without blocking behind in-flight solves.
//!
//! Kept as a single `#[test]` in its own binary so the process-wide
//! `worker_threads_spawned` counter sees no interference from parallel
//! test threads.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parallel_ri::registry;
use ri_core::engine::json::Value;
use ri_core::engine::{RunConfig, ServeRequest, ServeResponse, WorkloadSpec};
use ri_serve::http;
use ri_serve::{ServeConfig, Server};

const POOL_WIDTH: usize = 3;

#[test]
fn concurrent_solves_share_one_pool_and_healthz_stays_responsive() {
    let server = Server::start(
        registry(),
        ServeConfig {
            threads: POOL_WIDTH,
            executors: 2,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();
    assert_eq!(server.pool_width(), POOL_WIDTH);

    // Startup built the shared pool (its workers are the only pool
    // threads this process should ever spawn).
    let pool_before = rayon::cached_pool(POOL_WIDTH);
    let spawned_before = rayon::worker_threads_spawned();
    assert!(spawned_before >= POOL_WIDTH);

    // Phase 1: a burst of concurrent parallel solves across problems,
    // with client-requested thread counts that differ from the pool
    // width — the server must clamp them onto the one shared pool
    // rather than building per-width pools.
    let names = registry().names();
    let responses: Vec<http::HttpResponse> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let names = &names;
                s.spawn(move || {
                    let mut request = ServeRequest::new(names[i % names.len()]);
                    request.workload = WorkloadSpec::new(256, 4);
                    // Deliberately ask for widths 1..=12.
                    request.config = RunConfig::new().seed(1).parallel().threads(i + 1);
                    http::request(
                        addr,
                        "POST",
                        "/solve",
                        Some(&request.to_json()),
                        Duration::from_secs(120),
                    )
                    .expect("transport")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for resp in &responses {
        assert_eq!(resp.status, 200, "{}", resp.body);
        let served = ServeResponse::from_json(&resp.body).expect("parseable");
        assert_eq!(
            served.config.threads,
            Some(POOL_WIDTH),
            "server must clamp requested widths onto the shared pool"
        );
    }

    // The spawn counter is the regression gate: zero new pool workers
    // for the whole burst, and the cached pool is the same object.
    assert_eq!(
        rayon::worker_threads_spawned(),
        spawned_before,
        "concurrent serving must not build additional pools"
    );
    assert!(
        Arc::ptr_eq(&pool_before, &rayon::cached_pool(POOL_WIDTH)),
        "the cached pool must be reused across the burst"
    );

    // Phase 2: /healthz during load. Saturate both executors with slower
    // solves, then health-check mid-flight: it must answer promptly (it
    // is served by the connection thread from atomics, not the solve
    // queue) and report the queue counters.
    let in_flight = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                s.spawn(move || {
                    let mut request = ServeRequest::new("delaunay");
                    request.workload = WorkloadSpec::new(6_000, 8);
                    request.config = RunConfig::new().parallel();
                    http::request(
                        addr,
                        "POST",
                        "/solve",
                        Some(&request.to_json()),
                        Duration::from_secs(180),
                    )
                    .expect("transport")
                })
            })
            .collect();

        // Give the burst a moment to be admitted, then health-check
        // while solves are (very likely still) running.
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        let health = http::request(addr, "GET", "/healthz", None, Duration::from_secs(5))
            .expect("healthz during load");
        let elapsed = t0.elapsed();
        assert_eq!(health.status, 200);
        assert!(
            elapsed < Duration::from_secs(3),
            "healthz took {elapsed:?} — it must not wait behind solves"
        );
        let doc = ri_core::engine::json::parse(&health.body).expect("healthz JSON");
        for key in ["queue_depth", "inflight", "served"] {
            assert!(
                doc.get(key).and_then(Value::as_usize).is_some(),
                "healthz missing `{key}`: {}",
                health.body
            );
        }

        let solves: Vec<http::HttpResponse> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        solves
    });
    for resp in &in_flight {
        assert_eq!(resp.status, 200, "{}", resp.body);
    }

    // Still exactly one pool after the slow burst.
    assert_eq!(rayon::worker_threads_spawned(), spawned_before);

    server.shutdown();
}
