//! End-to-end serving tests: boot `ri-serve` on an ephemeral port
//! in-process and drive it over real TCP — golden answer round-trips per
//! registered problem, concurrent mixed-problem load, and structured
//! error envelopes for every malformed-input class.

use std::time::Duration;

use parallel_ri::registry;
use ri_core::engine::json::Value;
use ri_core::engine::{
    OutputSummary, RunConfig, ServeError, ServeErrorKind, ServeRequest, ServeResponse, WorkloadSpec,
};
use ri_serve::http;
use ri_serve::{ServeConfig, Server};

/// One shared width for every server in this test binary: servers built
/// at the same width share one cached pool (`Runner::pool`).
const POOL_WIDTH: usize = 2;

fn start_server(cfg_mut: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut cfg = ServeConfig {
        threads: POOL_WIDTH,
        executors: 3,
        ..ServeConfig::default()
    };
    cfg_mut(&mut cfg);
    Server::start(registry(), cfg).expect("server starts")
}

fn post_solve(server: &Server, body: &str) -> http::HttpResponse {
    http::request(
        server.local_addr(),
        "POST",
        "/solve",
        Some(body),
        Duration::from_secs(120),
    )
    .expect("transport round-trip")
}

/// The mode-invariant answer as a canonical JSON string.
fn fingerprint(summary: &OutputSummary) -> String {
    Value::Obj(summary.answer().to_vec()).write()
}

/// (a) Golden round-trip: for every registered problem, the answer served
/// over TCP equals a direct `solve_erased` call replaying the response's
/// own echoed workload + config.
#[test]
fn golden_round_trip_per_problem() {
    let server = start_server(|_| {});
    let reg = registry();
    for name in reg.names() {
        let mut request = ServeRequest::new(name);
        request.workload = WorkloadSpec::new(96, 3);
        request.config = RunConfig::new().seed(5).parallel();
        let resp = post_solve(&server, &request.to_json());
        assert_eq!(resp.status, 200, "{name}: {}", resp.body);
        let served = ServeResponse::from_json(&resp.body)
            .unwrap_or_else(|e| panic!("{name}: unparseable response: {e}"));
        assert_eq!(served.problem, name);
        // The server clamps parallel solves to its shared pool width and
        // documents that in the config echo.
        assert_eq!(served.config.threads, Some(server.pool_width()));
        assert_eq!(served.report.threads, server.pool_width());

        // Replay the echoed request directly through the registry: the
        // served answer must match exactly.
        let (direct, _) = reg
            .solve(&served.problem, &served.workload, &served.config)
            .expect("direct replay");
        assert_eq!(
            fingerprint(&served.summary),
            fingerprint(&direct),
            "{name}: served answer diverges from direct replay"
        );
    }
    server.shutdown();
}

/// (b) 32 concurrent mixed-problem requests from client threads all
/// succeed, and every response's answer matches its sequential reference.
#[test]
fn concurrent_mixed_requests_match_sequential_references() {
    let server = start_server(|cfg| cfg.executors = 4);
    let reg = registry();
    let names = reg.names();

    // Sequential references, computed up front: the paper's executors
    // reproduce the sequential output exactly, so a parallel serve of the
    // same instance must answer identically.
    let references: Vec<String> = names
        .iter()
        .map(|name| {
            let (summary, _) = reg
                .solve(
                    name,
                    &WorkloadSpec::new(64, 9),
                    &RunConfig::new().seed(2).sequential(),
                )
                .expect("reference solve");
            fingerprint(&summary)
        })
        .collect();

    let outcomes: Vec<(usize, http::HttpResponse)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..32)
            .map(|i| {
                let server = &server;
                let names = &names;
                s.spawn(move || {
                    let which = i % names.len();
                    let mut request = ServeRequest::new(names[which]);
                    request.workload = WorkloadSpec::new(64, 9);
                    request.config = RunConfig::new().seed(2).parallel();
                    (which, post_solve(server, &request.to_json()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    assert_eq!(outcomes.len(), 32);
    for (which, resp) in outcomes {
        let name = names[which];
        assert_eq!(resp.status, 200, "{name}: {}", resp.body);
        let served = ServeResponse::from_json(&resp.body).expect("parseable response");
        assert_eq!(
            fingerprint(&served.summary),
            references[which],
            "{name}: concurrent answer diverges from sequential reference"
        );
    }
    server.shutdown();
}

/// (c) Malformed JSON, unknown problems, bad workloads, wrong
/// methods/paths and oversized bodies all answer **structured JSON error
/// envelopes** with the right status — never connection drops.
#[test]
fn error_classes_answer_structured_envelopes() {
    let server = start_server(|cfg| cfg.max_body_bytes = 4096);

    let expect_error = |resp: http::HttpResponse, kind: ServeErrorKind, label: &str| {
        let err = ServeError::from_json(&resp.body).unwrap_or_else(|e| {
            panic!(
                "{label}: body is not an error envelope ({e}): {}",
                resp.body
            )
        });
        assert_eq!(err.kind, kind, "{label}: {}", resp.body);
        assert_eq!(resp.status, kind.http_status(), "{label}");
        assert!(!err.message.is_empty(), "{label}: empty message");
    };

    // Malformed JSON bodies.
    for body in ["", "not json at all", "{\"problem\":", "{\"problem\":7}"] {
        let resp = post_solve(&server, body);
        expect_error(resp, ServeErrorKind::BadRequest, "malformed body");
    }

    // Unknown problem name.
    let resp = post_solve(&server, "{\"problem\":\"nope\"}");
    expect_error(resp, ServeErrorKind::UnknownProblem, "unknown problem");

    // Constructor-rejected workload.
    let resp = post_solve(
        &server,
        "{\"problem\":\"delaunay\",\"workload\":{\"n\":64,\"shape\":\"bogus-shape\"}}",
    );
    expect_error(resp, ServeErrorKind::BadWorkload, "bad workload");

    // Seeds that cannot round-trip through JSON.
    let resp = post_solve(
        &server,
        &format!(
            "{{\"problem\":\"sort\",\"workload\":{{\"seed\":{}}}}}",
            1u64 << 53
        ),
    );
    expect_error(resp, ServeErrorKind::BadRequest, "oversized seed");

    // Oversized body: rejected from the declared length — and promptly,
    // even when head and body arrive coalesced in one segment (the
    // server must not stall trying to re-read body bytes it already
    // buffered with the head).
    let t0 = std::time::Instant::now();
    let resp = post_solve(
        &server,
        &format!("{{\"problem\":\"sort\",\"pad\":\"{}\"}}", "x".repeat(8192)),
    );
    let elapsed = t0.elapsed();
    expect_error(resp, ServeErrorKind::BodyTooLarge, "oversized body");
    assert!(
        elapsed < Duration::from_secs(5),
        "413 took {elapsed:?} — the server must not block on already-buffered body bytes"
    );

    // Wrong method on a real path; unknown path.
    let addr = server.local_addr();
    let resp = http::request(addr, "GET", "/solve", None, Duration::from_secs(10)).unwrap();
    expect_error(resp, ServeErrorKind::MethodNotAllowed, "GET /solve");
    let resp = http::request(addr, "DELETE", "/healthz", None, Duration::from_secs(10)).unwrap();
    expect_error(resp, ServeErrorKind::MethodNotAllowed, "DELETE /healthz");
    let resp = http::request(addr, "GET", "/bogus", None, Duration::from_secs(10)).unwrap();
    expect_error(resp, ServeErrorKind::NotFound, "unknown path");

    // The `errored` counter must equal the error responses issued (11
    // above) — each failure counted exactly once, whether it failed at
    // parse, admission or solve stage.
    let health = http::request(addr, "GET", "/healthz", None, Duration::from_secs(10)).unwrap();
    let doc = ri_core::engine::json::parse(&health.body).expect("healthz JSON");
    assert_eq!(
        doc.get("errored").and_then(Value::as_usize),
        Some(11),
        "errored counter must count each failed request once: {}",
        health.body
    );

    server.shutdown();
}

/// The two read-only endpoints: `/problems` lists the whole registry,
/// `/healthz` reports ok with the serving counters.
#[test]
fn problems_and_healthz_report_the_registry_and_counters() {
    let server = start_server(|_| {});
    let addr = server.local_addr();

    let resp = http::request(addr, "GET", "/problems", None, Duration::from_secs(10)).unwrap();
    assert_eq!(resp.status, 200);
    let doc = ri_core::engine::json::parse(&resp.body).expect("problems JSON");
    let listed: Vec<String> = doc
        .get("problems")
        .and_then(Value::as_arr)
        .expect("problems array")
        .iter()
        .map(|p| p.get("name").and_then(Value::as_str).unwrap().to_string())
        .collect();
    let expected: Vec<String> = registry().names().iter().map(|s| s.to_string()).collect();
    assert_eq!(listed, expected);

    let resp = http::request(addr, "GET", "/healthz", None, Duration::from_secs(10)).unwrap();
    assert_eq!(resp.status, 200);
    let doc = ri_core::engine::json::parse(&resp.body).expect("healthz JSON");
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
    // The additive identity fields: shard_id (empty unless configured)
    // and the build version.
    assert_eq!(doc.get("shard_id").and_then(Value::as_str), Some(""));
    assert_eq!(
        doc.get("version").and_then(Value::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert_eq!(
        doc.get("pool_threads").and_then(Value::as_usize),
        Some(server.pool_width())
    );
    for key in [
        "queue_depth",
        "inflight",
        "served",
        "errored",
        "max_inflight",
    ] {
        assert!(
            doc.get(key).and_then(Value::as_usize).is_some(),
            "healthz missing numeric `{key}`: {}",
            resp.body
        );
    }
    server.shutdown();
}

/// Connections beyond `max_connections` are shed with a structured 503
/// straight from the acceptor — idle sockets cannot exhaust handler
/// threads.
#[test]
fn connection_cap_sheds_with_structured_503() {
    let server = start_server(|cfg| cfg.max_connections = 1);
    let addr = server.local_addr();

    // An idle connection that never sends a request holds the only
    // handler slot (its handler blocks in read).
    let idle = std::net::TcpStream::connect(addr).expect("idle connect");
    std::thread::sleep(Duration::from_millis(100));

    let resp = http::request(addr, "GET", "/healthz", None, Duration::from_secs(5))
        .expect("rejected connection still gets a response");
    assert_eq!(resp.status, 503, "{}", resp.body);
    let err = ServeError::from_json(&resp.body).expect("structured 503");
    assert_eq!(err.kind, ServeErrorKind::Overloaded);

    // Releasing the slot restores service.
    drop(idle);
    std::thread::sleep(Duration::from_millis(100));
    let resp = http::request(addr, "GET", "/healthz", None, Duration::from_secs(5)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    server.shutdown();
}

/// Keep-alive: one TCP connection serves many requests, the configured
/// shard id shows in `/healthz`, and a 503 rejection carries
/// `Retry-After` plus `"retryable":true` in its envelope.
#[test]
fn keep_alive_shard_identity_and_retry_after() {
    let server = start_server(|cfg| cfg.shard_id = "shard-7".into());
    let mut conn = http::ClientConn::new(server.local_addr(), Duration::from_secs(120));

    // Several requests over the same connection: after the first, the
    // connection object must still be holding its socket.
    let mut request = ServeRequest::new("sort");
    request.workload = WorkloadSpec::new(64, 2);
    let body = request.to_json();
    for i in 0..3 {
        let resp = conn.request("POST", "/solve", Some(&body)).expect("solve");
        assert_eq!(resp.status, 200, "request {i}: {}", resp.body);
        assert!(resp.keep_alive(), "server advertises keep-alive");
        if i > 0 {
            assert!(
                conn.is_connected(),
                "the connection was reused, not reopened"
            );
        }
    }
    let health = conn.request("GET", "/healthz", None).expect("healthz");
    let doc = ri_core::engine::json::parse(&health.body).unwrap();
    assert_eq!(doc.get("shard_id").and_then(Value::as_str), Some("shard-7"));
    server.shutdown();

    // An admission gate of zero sheds every solve: the 503 must carry
    // Retry-After and a retryable envelope.
    let server = start_server(|cfg| cfg.max_inflight = 0);
    let resp = post_solve(&server, &body);
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"));
    let err = ServeError::from_json(&resp.body).expect("structured 503");
    assert_eq!(err.kind, ServeErrorKind::Overloaded);
    assert!(err.retryable, "overload rejections are marked retryable");
    server.shutdown();
}

/// Graceful shutdown answers everything admitted, then stops accepting.
#[test]
fn shutdown_is_graceful() {
    let server = start_server(|_| {});
    let addr = server.local_addr();
    let mut request = ServeRequest::new("sort");
    request.workload = WorkloadSpec::new(64, 1);
    let resp = post_solve(&server, &request.to_json());
    assert_eq!(resp.status, 200);
    server.shutdown();
    // The listener is gone: new connections are refused (or reset).
    assert!(http::request(addr, "GET", "/healthz", None, Duration::from_millis(500)).is_err());
}
