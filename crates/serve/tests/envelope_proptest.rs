//! Property tests for the serving envelope: JSON round-trip identity for
//! arbitrary `WorkloadSpec`/`RunConfig` combinations, and parser
//! robustness (reject, never panic) on mutated and truncated bodies.

use proptest::prelude::*;
use ri_core::engine::envelope::{
    ServeError, ServeErrorKind, ServeRequest, ServeResponse, SEED_LIMIT,
};
use ri_core::engine::{ExecMode, OutputSummary, RunConfig, RunReport, WorkloadSpec};

const SHAPES: [&str; 6] = [
    "uniform-square",
    "near-circle",
    "tangent",
    "gnm-weighted",
    "dag",
    "a shape that needs \"escaping\"\n",
];

const PROBLEMS: [&str; 4] = ["sort", "delaunay", "lp-d", "not-a-problem"];

/// The three execution modes, indexed for proptest strategies: 0 =
/// parallel, 1 = sequential, 2 = `relaxed:k`.
fn mode_from(mode_idx: usize, relax_k: usize) -> ExecMode {
    match mode_idx {
        0 => ExecMode::Parallel,
        1 => ExecMode::Sequential,
        _ => ExecMode::Relaxed { k: relax_k },
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the strategy tuple 1:1
fn build_request(
    problem_idx: usize,
    n: usize,
    wseed: u64,
    shape: Option<usize>,
    param: Option<f64>,
    cseed: u64,
    mode: ExecMode,
    threads: usize,
    instrument: bool,
) -> ServeRequest {
    let mut workload = WorkloadSpec::new(n, wseed);
    workload.shape = shape.map(|i| SHAPES[i].to_string());
    workload.param = param;
    let mut config = RunConfig::new()
        .seed(cseed)
        .threads(threads)
        .instrument(instrument);
    config.mode = mode;
    ServeRequest {
        problem: PROBLEMS[problem_idx].to_string(),
        workload,
        config,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `ServeRequest` JSON round-trip identity over the whole field
    /// space: every shape/param/mode/threads/instrument combination and
    /// the full representable seed range.
    #[test]
    fn request_round_trip_identity(
        problem_idx in 0usize..4,
        n in 0usize..2_000_000,
        wseed in 0u64..SEED_LIMIT,
        has_shape in any::<bool>(),
        shape_idx in 0usize..6,
        has_param in any::<bool>(),
        param in -1.0e6f64..1.0e6,
        cseed in 0u64..SEED_LIMIT,
        mode_idx in 0usize..3,
        relax_k in 1usize..1_000_000,
        threads in 0usize..17,
        instrument in any::<bool>(),
    ) {
        let request = build_request(
            problem_idx,
            n,
            wseed,
            has_shape.then_some(shape_idx),
            has_param.then_some(param),
            cseed,
            mode_from(mode_idx, relax_k),
            threads,
            instrument,
        );
        let text = request.to_json();
        let back = ServeRequest::from_json(&text).expect("own output parses");
        prop_assert_eq!(back, request);
    }

    /// `ServeResponse` JSON round-trip identity: summary answer/metric
    /// fields and a populated report all survive the wire.
    #[test]
    fn response_round_trip_identity(
        n in 0usize..100_000,
        wseed in 0u64..SEED_LIMIT,
        answers in proptest::collection::vec(-1.0e9f64..1.0e9, 0..4),
        metrics in proptest::collection::vec(0.0f64..1.0e9, 0..4),
        rounds in proptest::collection::vec((0usize..10_000, 0u64..1_000_000), 0..6),
        mode_idx in 0usize..3,
        relax_k in 1usize..1_000_000,
        threads in 1usize..9,
        depth in 0usize..1_000,
        checks in 0u64..1_000_000,
        wall in 0.0f64..100.0,
        rank_inversions in 0u64..1_000_000,
        wasted_retries in 0u64..1_000_000,
        has_fallback in any::<bool>(),
    ) {
        let mut summary = OutputSummary::new();
        for (i, x) in answers.iter().enumerate() {
            summary.answer_num(&format!("a{i}"), *x);
        }
        summary.answer_bool("ok", true).answer_str("note", "x\"y\"\nz");
        for (i, x) in metrics.iter().enumerate() {
            summary.metric_num(&format!("m{i}"), *x);
        }

        let mode = mode_from(mode_idx, relax_k);
        let mut report = RunReport::new("prop");
        report.mode = mode;
        report.threads = threads;
        report.items = n;
        for &(items, work) in &rounds {
            report.record_round(items, work);
        }
        report.depth = depth;
        report.checks = checks;
        report.wall_seconds = wall;
        report.rank_inversions = rank_inversions;
        report.wasted_retries = wasted_retries;
        report.relaxed_fallback = has_fallback.then(|| "ran exact \"parallel\"\n".to_string());

        let mut config = RunConfig::new().threads(threads);
        config.mode = mode;
        let response = ServeResponse {
            problem: "prop".into(),
            workload: WorkloadSpec::new(n, wseed),
            config,
            summary,
            report,
        };
        let back = ServeResponse::from_json(&response.to_json()).expect("own output parses");
        prop_assert_eq!(back, response);
    }

    /// `ServeError` round-trips for every kind with arbitrary (including
    /// control-character) messages, and the `retryable` field survives
    /// whether left at the kind's default or explicitly overridden
    /// either way.
    #[test]
    fn error_round_trip_identity(
        kind_idx in 0usize..9,
        raw in proptest::collection::vec(0u8..128, 0..40),
        override_retryable in any::<bool>(),
        retryable in any::<bool>(),
    ) {
        let message: String = raw.iter().map(|&b| b as char).collect();
        let mut err = ServeError::new(ServeErrorKind::ALL[kind_idx], message);
        if override_retryable {
            err = err.retryable(retryable);
        }
        let back = ServeError::from_json(&err.to_json()).expect("own output parses");
        prop_assert_eq!(back.retryable, err.retryable);
        prop_assert_eq!(back, err);
    }

    /// Bodies written before the `retryable` field existed (no such key)
    /// still parse, defaulting by kind — the additivity contract.
    #[test]
    fn legacy_error_bodies_default_retryable_by_kind(kind_idx in 0usize..9) {
        let kind = ServeErrorKind::ALL[kind_idx];
        let legacy = format!(
            "{{\"error\":{{\"kind\":\"{}\",\"message\":\"m\"}}}}",
            kind.as_str()
        );
        let parsed = ServeError::from_json(&legacy).expect("legacy body parses");
        prop_assert_eq!(parsed.retryable, kind.default_retryable());
    }

    /// Parser robustness: arbitrary character-level mutations of valid
    /// request bodies parse to `Ok` or `Err` — never a panic. (The
    /// vendored proptest has no shrinking, so failures print the mutated
    /// body via the panic message.)
    #[test]
    fn mutated_request_bodies_never_panic(
        problem_idx in 0usize..4,
        n in 0usize..10_000,
        wseed in 0u64..SEED_LIMIT,
        op in 0usize..3,
        pos in 0usize..4096,
        replacement in 0u8..128,
        mode_idx in 0usize..3,
    ) {
        let base = build_request(
            problem_idx, n, wseed, Some(0), Some(1.5), 0, mode_from(mode_idx, 8), 4, true,
        )
        .to_json();
        let chars: Vec<char> = base.chars().collect();
        let mutated: String = match op {
            // Truncate at an arbitrary char boundary.
            0 => chars[..pos % (chars.len() + 1)].iter().collect(),
            // Replace one char.
            1 => {
                let mut c = chars.clone();
                let at = pos % c.len();
                c[at] = replacement as char;
                c.into_iter().collect()
            }
            // Insert one char.
            _ => {
                let mut c = chars.clone();
                c.insert(pos % (c.len() + 1), replacement as char);
                c.into_iter().collect()
            }
        };
        // Must return, not panic; the result itself may be Ok or Err.
        let _ = ServeRequest::from_json(&mutated);
        let _ = ServeResponse::from_json(&mutated);
        let _ = ServeError::from_json(&mutated);
    }
}

/// Every strict prefix of a canonical request body is rejected cleanly
/// (deterministic truncation sweep — the classic torn-write case).
#[test]
fn truncated_bodies_reject_cleanly() {
    let mut request = ServeRequest::new("delaunay");
    request.workload = WorkloadSpec::new(777, 3).shape("uniform-disk").param(2.0);
    request.config = RunConfig::new().seed(11).threads(4);
    let body = request.to_json();
    for end in 0..body.len() {
        if !body.is_char_boundary(end) {
            continue;
        }
        assert!(
            ServeRequest::from_json(&body[..end]).is_err(),
            "prefix of {end} bytes unexpectedly parsed"
        );
    }
    // The whole body parses.
    assert_eq!(ServeRequest::from_json(&body).unwrap(), request);
}
