//! The keep-alive client's stale-connection contract, pinned down with
//! a connection-counting test double and a real chaotic shard:
//!
//! - a request that lands on a *stale pooled* connection (the server
//!   idle-closed it in between) is retried exactly once on a fresh
//!   connection and executes exactly once server-side;
//! - with `retry_stale: false` (non-idempotent stream batches) the same
//!   failure is reported, never blindly re-sent;
//! - a mid-response failure on a *fresh* connection is reported, not
//!   retried — the shard's `served` counter proves the request executed
//!   exactly once even though no response arrived.

use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parallel_ri::registry;
use ri_core::engine::json::{self, Value};
use ri_serve::http::{read_request, ClientConn};
use ri_serve::{ServeConfig, Server};

/// A server double that speaks just enough HTTP: each accepted
/// connection serves exactly `requests_per_conn` responses, then closes
/// — the deterministic version of a keep-alive idle timeout. Counts
/// every connection accepted and every request actually read.
struct OneShotServer {
    addr: SocketAddr,
    connections: Arc<AtomicUsize>,
    requests: Arc<AtomicUsize>,
}

impl OneShotServer {
    fn start(requests_per_conn: usize) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("double binds");
        let addr = listener.local_addr().expect("double addr");
        let connections = Arc::new(AtomicUsize::new(0));
        let requests = Arc::new(AtomicUsize::new(0));
        let (conns, reqs) = (Arc::clone(&connections), Arc::clone(&requests));
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { return };
                conns.fetch_add(1, Ordering::SeqCst);
                for _ in 0..requests_per_conn {
                    if read_request(&mut stream, 1 << 20).is_err() {
                        break;
                    }
                    reqs.fetch_add(1, Ordering::SeqCst);
                    let body = "{\"ok\":true}";
                    let head = format!(
                        "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                         Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
                        body.len()
                    );
                    if stream
                        .write_all(head.as_bytes())
                        .and_then(|_| stream.write_all(body.as_bytes()))
                        .is_err()
                    {
                        break;
                    }
                }
                // Connection dropped here: the client's pooled stream is
                // now stale, exactly like an idle-timeout close.
            }
        });
        OneShotServer {
            addr,
            connections,
            requests,
        }
    }
}

/// A stale pooled connection is retried exactly once — the server sees
/// the retried request on one fresh connection, never twice — and with
/// `retry_stale: false` the staleness surfaces as an error instead.
#[test]
fn stale_pooled_connection_retries_exactly_once_never_twice() {
    let server = OneShotServer::start(1);
    let mut conn = ClientConn::new(server.addr, Duration::from_secs(5));

    // Request 1: fresh connection, served, connection then closed
    // server-side while the client still holds it.
    let resp = conn.request("POST", "/solve", Some("{}")).expect("first");
    assert_eq!(resp.status, 200);
    assert!(conn.is_connected(), "the client pools the connection");

    // Request 2 lands on the stale pooled connection: one transparent
    // retry on a fresh connection, and the server received the request
    // exactly twice in total — the copy written into the dead socket
    // reached nobody, so nothing executed twice.
    let resp = conn.request("POST", "/solve", Some("{}")).expect("second");
    assert_eq!(resp.status, 200);
    assert_eq!(server.requests.load(Ordering::SeqCst), 2, "no double run");
    assert_eq!(server.connections.load(Ordering::SeqCst), 2, "one retry");

    // Request 3 on the (again stale) pooled connection, but flagged
    // non-idempotent: the failure is reported, nothing is re-sent.
    assert!(conn.is_connected());
    let outcome = conn.request_with("POST", "/stream/x/batch", Some("{}"), &[], false);
    assert!(outcome.is_err(), "staleness surfaces to the caller");
    assert_eq!(server.requests.load(Ordering::SeqCst), 2, "no blind resend");
    assert_eq!(server.connections.load(Ordering::SeqCst), 2);
}

/// A mid-response connection drop on a *fresh* connection is reported,
/// not retried: the shard's own `served` counter proves the solve
/// executed exactly once even though the client never saw the response.
#[test]
fn fresh_connection_failure_is_reported_not_resent() {
    let server = Server::start(
        registry(),
        ServeConfig {
            threads: 2,
            executors: 2,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    // Every faultable request executes, then its response is severed
    // halfway through the Content-Length frame.
    server.set_chaos("seed=3,drop=1.0").expect("chaos installs");

    let mut conn = ClientConn::new(server.local_addr(), Duration::from_secs(5));
    let body = "{\"problem\":\"sort\",\"workload\":{\"n\":16,\"seed\":1},\
                \"config\":{\"seed\":7}}";
    let outcome = conn.request("POST", "/solve", Some(body));
    assert!(
        outcome.is_err(),
        "a truncated response is a transport error, got {outcome:?}"
    );

    // The healthz path is never faulted: read the counters directly.
    let health = conn.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(health.status, 200);
    let view = json::parse(&health.body).expect("healthz parses");
    assert_eq!(
        view.get("served").and_then(Value::as_f64),
        Some(1.0),
        "executed exactly once, retried zero times: {}",
        health.body
    );
    server.shutdown();
}
