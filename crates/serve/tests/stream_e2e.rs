//! End-to-end streaming tests: boot `ri-serve` in-process and drive the
//! `/stream` lifecycle over real TCP — open / batch / inspect / close,
//! final-answer equality with one-shot `/solve`, admission and TTL
//! eviction, health counters, and structured errors.

use std::time::Duration;

use parallel_ri::registry;
use ri_core::engine::json::{self, Value};
use ri_core::engine::session::BatchDelta;
use ri_core::engine::{RunConfig, ServeRequest, ServeResponse, WorkloadSpec};
use ri_serve::http;
use ri_serve::{ServeConfig, Server};

const POOL_WIDTH: usize = 2;

fn start_server(cfg_mut: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut cfg = ServeConfig {
        threads: POOL_WIDTH,
        executors: 2,
        ..ServeConfig::default()
    };
    cfg_mut(&mut cfg);
    Server::start(registry(), cfg).expect("server starts")
}

fn request(server: &Server, method: &str, path: &str, body: Option<&str>) -> http::HttpResponse {
    http::request(
        server.local_addr(),
        method,
        path,
        body,
        Duration::from_secs(120),
    )
    .expect("transport round-trip")
}

fn parse(body: &str) -> Value {
    json::parse(body).unwrap_or_else(|e| panic!("unparseable body `{body}`: {e}"))
}

fn health_num(server: &Server, key: &str) -> f64 {
    let health = parse(&request(server, "GET", "/healthz", None).body);
    health
        .get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("healthz missing `{key}`"))
}

#[test]
fn stream_lifecycle_matches_one_shot_solve() {
    let server = start_server(|_| {});
    let open_body =
        r#"{"problem":"sort","workload":{"n":48,"seed":7},"config":{"seed":3,"mode":"parallel"}}"#;
    let opened = request(&server, "POST", "/stream", Some(open_body));
    assert_eq!(opened.status, 200, "{}", opened.body);
    let info = parse(&opened.body);
    let id = info.get("session").unwrap().as_str().unwrap().to_string();
    assert_eq!(info.get("capacity"), Some(&Value::Num(48.0)));
    assert_eq!(info.get("native"), Some(&Value::Bool(true)));
    assert_eq!(health_num(&server, "sessions_open"), 1.0);

    // Three batches; the delta carries batch position + trace each time.
    let mut last = None;
    for (i, count) in [16, 16, 16].into_iter().enumerate() {
        let resp = request(
            &server,
            "POST",
            &format!("/stream/{id}/batch"),
            Some(&format!("{{\"count\":{count}}}")),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let body = parse(&resp.body);
        assert_eq!(body.get("session").unwrap().as_str(), Some(id.as_str()));
        let delta = BatchDelta::from_value(&body).expect("delta parses");
        assert_eq!(delta.batch, i);
        assert!(!delta.pending);
        assert!(!delta.trace.rounds.is_empty());
        last = Some(delta);
    }
    let last = last.unwrap();
    assert!(last.complete);

    // The final streamed answer equals the one-shot /solve of the same
    // workload + config — batch-split invariance over the wire.
    let mut one_shot = ServeRequest::new("sort");
    one_shot.workload = WorkloadSpec::new(48, 7);
    one_shot.config = RunConfig::new().seed(3).parallel();
    let solved = request(&server, "POST", "/solve", Some(&one_shot.to_json()));
    assert_eq!(solved.status, 200, "{}", solved.body);
    let solved = ServeResponse::from_json(&solved.body).unwrap();
    assert_eq!(
        Value::Obj(last.answer.clone()).write(),
        Value::Obj(solved.summary.answer().to_vec()).write()
    );

    // GET info, then close; the session is gone afterwards.
    let info = parse(&request(&server, "GET", &format!("/stream/{id}"), None).body);
    assert_eq!(info.get("complete"), Some(&Value::Bool(true)));
    assert_eq!(info.get("batches"), Some(&Value::Num(3.0)));
    let closed = request(&server, "DELETE", &format!("/stream/{id}"), None);
    assert_eq!(closed.status, 200);
    assert_eq!(health_num(&server, "sessions_open"), 0.0);
    assert_eq!(health_num(&server, "sessions_closed"), 1.0);
    assert_eq!(health_num(&server, "batches_served"), 3.0);
    let gone = request(
        &server,
        "POST",
        &format!("/stream/{id}/batch"),
        Some(r#"{"count":1}"#),
    );
    assert_eq!(gone.status, 404, "{}", gone.body);
    server.shutdown();
}

#[test]
fn session_admission_and_ttl_eviction() {
    // Admission: one session slot; the second open is a retryable 503.
    let server = start_server(|cfg| cfg.max_sessions = 1);
    let open = r#"{"problem":"sort","workload":{"n":16,"seed":1}}"#;
    assert_eq!(request(&server, "POST", "/stream", Some(open)).status, 200);
    let full = request(&server, "POST", "/stream", Some(open));
    assert_eq!(full.status, 503, "{}", full.body);
    let err = parse(&full.body);
    assert_eq!(
        err.get("error").unwrap().get("retryable"),
        Some(&Value::Bool(true)),
        "another shard may have room: {}",
        full.body
    );
    server.shutdown();

    // TTL: an idle session is evicted by a later request's sweep.
    let server = start_server(|cfg| cfg.session_ttl_ms = 60);
    let opened = parse(&request(&server, "POST", "/stream", Some(open)).body);
    let id = opened.get("session").unwrap().as_str().unwrap().to_string();
    std::thread::sleep(Duration::from_millis(120));
    let batch = request(
        &server,
        "POST",
        &format!("/stream/{id}/batch"),
        Some(r#"{"count":1}"#),
    );
    assert_eq!(batch.status, 404, "evicted: {}", batch.body);
    assert!(health_num(&server, "sessions_evicted") >= 1.0);
    server.shutdown();
}

#[test]
fn stream_errors_are_structured() {
    let server = start_server(|_| {});

    // Unknown problem → 404 envelope at open.
    let resp = request(
        &server,
        "POST",
        "/stream",
        Some(r#"{"problem":"nope","workload":{"n":8}}"#),
    );
    assert_eq!(resp.status, 404, "{}", resp.body);

    // Zero capacity → 400.
    let resp = request(
        &server,
        "POST",
        "/stream",
        Some(r#"{"problem":"sort","workload":{"n":0}}"#),
    );
    assert_eq!(resp.status, 400, "{}", resp.body);

    // Bad batch bodies and overfeeds → 400 with the session intact.
    let opened = parse(
        &request(
            &server,
            "POST",
            "/stream",
            Some(r#"{"problem":"sort","workload":{"n":8,"seed":1}}"#),
        )
        .body,
    );
    let id = opened.get("session").unwrap().as_str().unwrap().to_string();
    let path = format!("/stream/{id}/batch");
    assert_eq!(
        request(&server, "POST", &path, Some(r#"{"count":0}"#)).status,
        400
    );
    assert_eq!(
        request(&server, "POST", &path, Some(r#"{"count":99}"#)).status,
        400
    );
    assert_eq!(
        request(&server, "POST", &path, Some(r#"{"count":8}"#)).status,
        200
    );

    // Method mismatches and bad paths.
    assert_eq!(request(&server, "GET", "/stream", None).status, 405);
    assert_eq!(
        request(&server, "PUT", &format!("/stream/{id}"), None).status,
        405
    );
    assert_eq!(request(&server, "GET", "/stream/", None).status, 404);
    assert_eq!(
        request(&server, "GET", &format!("/stream/{id}/nope"), None).status,
        404,
        "sub-paths other than /batch do not exist"
    );
    server.shutdown();
}
