//! d-dimensional Seidel LP — the paper's §5.1 extension:
//!
//! *"the algorithm can be extended to the case where the dimension d is
//! greater than two by having a randomized incremental d-dimensional LP
//! algorithm recursively call a randomized incremental algorithm for
//! solving (d−1)-dimensional LPs. ... The work bound is O(d!·n) as in the
//! sequential algorithm. ... we can use the same randomized order for all
//! sub-problems."*
//!
//! Implementation: maximise `objective · x` subject to `normalᵢ · x ≤
//! boundᵢ` inside the synthetic box `[-M, M]^d`. Constraints are inserted
//! in the given random order; a violated (special) constraint pins the
//! optimum to its hyperplane, one variable is eliminated (largest-pivot
//! column), and the earlier constraints — *in the same order* — form the
//! (d−1)-dimensional sub-problem. The base case `d = 1` is interval
//! clipping.
//!
//! Scope note (documented in DESIGN.md): the top level runs through the
//! Type 2 executor (parallel violation checks); the recursive sub-solves
//! are sequential, so this demonstrates the *work* structure (`O(d!·n)`
//! expected, `O(d·H_n)` expected specials at the top level) rather than
//! the paper's full `O(d! log^{d-1} n)` depth bound, which would need the
//! prefix-doubling executor at every recursion level.

use ri_core::engine::{execute_type2, ExecMode, RunConfig, RunReport};
use ri_core::Type2Algorithm;

/// Numerical tolerance (the workloads are O(1)-scaled).
const EPS: f64 = 1e-9;
/// Synthetic bounding box half-width.
const BOX_M: f64 = 1e6;

/// A halfspace constraint `normal · x ≤ bound` in d dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintD {
    /// Outward normal (length d).
    pub normal: Vec<f64>,
    /// Right-hand side.
    pub bound: f64,
}

impl ConstraintD {
    /// Build a constraint.
    pub fn new(normal: Vec<f64>, bound: f64) -> Self {
        ConstraintD { normal, bound }
    }

    fn violation(&self, x: &[f64]) -> f64 {
        dot(&self.normal, x) - self.bound
    }
}

/// A d-dimensional LP instance (constraints already in random order).
#[derive(Debug, Clone)]
pub struct LpInstanceD {
    /// Maximisation direction (length d ≥ 1).
    pub objective: Vec<f64>,
    /// The constraints.
    pub constraints: Vec<ConstraintD>,
}

/// Solver outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcomeD {
    /// Optimum point (within the synthetic box).
    Optimal(Vec<f64>),
    /// No feasible point.
    Infeasible,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Maximise `obj · x` over the box alone: per-coordinate extreme.
fn box_optimum(obj: &[f64]) -> Vec<f64> {
    obj.iter()
        .map(|&o| if o >= 0.0 { BOX_M } else { -BOX_M })
        .collect()
}

/// Solve the LP over `constraints[..m]` recursively (sequential Seidel).
/// `None` = infeasible.
fn solve_recursive(obj: &[f64], constraints: &[ConstraintD]) -> Option<Vec<f64>> {
    let d = obj.len();
    if d == 1 {
        return solve_1d(obj[0], constraints.iter().map(|c| (c.normal[0], c.bound)));
    }
    let mut x = box_optimum(obj);
    for (k, c) in constraints.iter().enumerate() {
        if c.violation(&x) <= EPS {
            continue;
        }
        // Tight constraint: eliminate the largest-pivot variable and
        // recurse on the earlier constraints in the same order.
        x = project_and_recurse(obj, &constraints[..k], c)?;
    }
    Some(x)
}

/// Solve a 1-D LP: maximise `o·x` s.t. `aᵢ x ≤ bᵢ` and `|x| ≤ M`.
fn solve_1d(o: f64, constraints: impl Iterator<Item = (f64, f64)>) -> Option<Vec<f64>> {
    let (mut lo, mut hi) = (-BOX_M, BOX_M);
    for (a, b) in constraints {
        if a.abs() <= EPS {
            if b < -EPS {
                return None;
            }
        } else if a > 0.0 {
            hi = hi.min(b / a);
        } else {
            lo = lo.max(b / a);
        }
    }
    if lo > hi + EPS {
        return None;
    }
    Some(vec![if o >= 0.0 { hi } else { lo }])
}

/// The optimum lies on `tight`'s hyperplane: eliminate variable `k*`
/// (largest |normal| entry), build the (d−1)-dimensional sub-problem over
/// `earlier`, solve it, and back-substitute.
fn project_and_recurse(
    obj: &[f64],
    earlier: &[ConstraintD],
    tight: &ConstraintD,
) -> Option<Vec<f64>> {
    let d = obj.len();
    let k = (0..d)
        .max_by(|&i, &j| {
            tight.normal[i]
                .abs()
                .partial_cmp(&tight.normal[j].abs())
                .expect("finite normals")
        })
        .expect("d >= 1");
    let nk = tight.normal[k];
    if nk.abs() <= EPS {
        // Degenerate normal: the constraint is `0 · x ≤ b` — either vacuous
        // or globally infeasible; a violated vacuous constraint means
        // infeasible.
        return None;
    }

    // x_k = (bound − Σ_{j≠k} n_j x_j) / n_k.
    let reduce = |coeffs: &[f64], rhs: f64| -> (Vec<f64>, f64) {
        let scale = coeffs[k] / nk;
        let red: Vec<f64> = (0..d)
            .filter(|&j| j != k)
            .map(|j| coeffs[j] - scale * tight.normal[j])
            .collect();
        (red, rhs - scale * tight.bound)
    };

    // Reduced objective (constant term dropped — argmax unchanged).
    let (robj, _) = reduce(obj, 0.0);
    // Reduced earlier constraints, in the same order, plus the box bounds
    // of the eliminated variable (|x_k| ≤ M becomes two constraints).
    let mut rcons: Vec<ConstraintD> = Vec::with_capacity(earlier.len() + 2);
    for c in earlier {
        let (rn, rb) = reduce(&c.normal, c.bound);
        rcons.push(ConstraintD::new(rn, rb));
    }
    for sign in [1.0, -1.0] {
        // sign · x_k ≤ M  ⇒  sign/n_k · (bound − Σ n_j x_j) ≤ M.
        let mut coeffs = vec![0.0; d];
        coeffs[k] = sign;
        let (rn, rb) = reduce(&coeffs, BOX_M);
        rcons.push(ConstraintD::new(rn, rb));
    }

    let sub = solve_recursive(&robj, &rcons)?;
    // Back-substitute: x_k from the hyperplane equation.
    let mut x = vec![0.0; d];
    let mut si = 0;
    for (j, xj) in x.iter_mut().enumerate() {
        if j != k {
            *xj = sub[si];
            si += 1;
        }
    }
    let partial: f64 = (0..d)
        .filter(|&j| j != k)
        .map(|j| tight.normal[j] * x[j])
        .sum();
    x[k] = (tight.bound - partial) / nk;
    Some(x)
}

struct SeidelD<'a> {
    inst: &'a LpInstanceD,
    optimum: Vec<f64>,
    infeasible: bool,
}

impl Type2Algorithm for SeidelD<'_> {
    fn len(&self) -> usize {
        self.inst.constraints.len()
    }

    fn is_special(&self, k: usize) -> bool {
        !self.infeasible && self.inst.constraints[k].violation(&self.optimum) > EPS
    }

    fn run_regular(&mut self, _k: usize) {}

    fn run_special(&mut self, k: usize) {
        match project_and_recurse(
            &self.inst.objective,
            &self.inst.constraints[..k],
            &self.inst.constraints[k],
        ) {
            Some(x) => self.optimum = x,
            None => self.infeasible = true,
        }
    }
}

/// Engine entry point: solve `inst` under `cfg`, returning the outcome and
/// the unified report. Like the 2-D solver, relaxed requests fall back to
/// the exact parallel schedule with a reported reason.
pub(crate) fn run_with_d(inst: &LpInstanceD, cfg: &RunConfig) -> (LpOutcomeD, RunReport) {
    let d = inst.objective.len();
    assert!(d >= 1, "dimension must be at least 1");
    assert!(
        inst.constraints.iter().all(|c| c.normal.len() == d),
        "constraint dimension mismatch"
    );
    let mut st = SeidelD {
        inst,
        optimum: box_optimum(&inst.objective),
        infeasible: false,
    };
    let fallback = matches!(cfg.mode, ExecMode::Relaxed { .. });
    let exact;
    let cfg = if fallback {
        exact = cfg.clone().parallel();
        &exact
    } else {
        cfg
    };
    let mut report = execute_type2(&mut st, cfg);
    if fallback {
        report.relaxed_fallback =
            Some("lp-d has no native relaxed loop; ran exact parallel".into());
    }
    report.algorithm = "lp-seidel-d".to_string();
    let outcome = if st.infeasible {
        LpOutcomeD::Infeasible
    } else {
        LpOutcomeD::Optimal(st.optimum)
    };
    (outcome, report)
}

/// Workload: constraints tangent to the unit d-sphere (`n̂ · x ≤ 1` for
/// random unit normals) — always feasible, optimum on the polytope
/// boundary.
pub fn tangent_instance_d(d: usize, n: usize, seed: u64) -> LpInstanceD {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1);
    LpInstanceD {
        objective: random_unit(&mut rng, d),
        constraints: (0..n)
            .map(|_| ConstraintD::new(random_unit(&mut rng, d), 1.0))
            .collect(),
    }
}

/// Tangent-degenerate d-dimensional instance: half the unit normals are
/// tiny (1e-4-scale) perturbations of the objective direction, the rest
/// uniform, all with bound 1. The optimum is a near-tie among the whole
/// perturbed bundle — every late bundle arrival forces a violation test
/// that is decided in the last few digits, the degenerate stress case
/// for the recursive Seidel solver. Always feasible (unit ball inside
/// every halfspace).
pub fn degenerate_instance_d(d: usize, n: usize, seed: u64) -> LpInstanceD {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDE6);
    let objective = random_unit(&mut rng, d);
    let constraints = (0..n)
        .map(|i| {
            let normal = if i % 2 == 0 {
                let noise = random_unit(&mut rng, d);
                let mut v: Vec<f64> = objective
                    .iter()
                    .zip(&noise)
                    .map(|(o, e)| o + 1e-4 * e)
                    .collect();
                let norm = dot(&v, &v).sqrt().max(1e-12);
                v.iter_mut().for_each(|x| *x /= norm);
                v
            } else {
                random_unit(&mut rng, d)
            };
            ConstraintD::new(normal, 1.0)
        })
        .collect();
    LpInstanceD {
        objective,
        constraints,
    }
}

/// Uniform random unit vector in `d` dimensions (Gaussian normalised,
/// Box–Muller pairs).
fn random_unit(rng: &mut rand::rngs::StdRng, d: usize) -> Vec<f64> {
    use rand::Rng;
    let mut v: Vec<f64> = (0..d)
        .map(|_| {
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        })
        .collect();
    let norm = dot(&v, &v).sqrt().max(1e-12);
    v.iter_mut().for_each(|x| *x /= norm);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-local stand-in for the retired `LpRunD` shape.
    struct Run {
        outcome: LpOutcomeD,
        stats: RunReport,
    }

    fn lp_d_sequential(inst: &LpInstanceD) -> Run {
        let (outcome, stats) = run_with_d(inst, &RunConfig::new().sequential());
        Run { outcome, stats }
    }

    fn lp_d_parallel(inst: &LpInstanceD) -> Run {
        let (outcome, stats) = run_with_d(inst, &RunConfig::new().parallel());
        Run { outcome, stats }
    }

    #[test]
    fn one_dimensional() {
        // max x s.t. x ≤ 3, −x ≤ 1 (i.e. x ≥ −1).
        let inst = LpInstanceD {
            objective: vec![1.0],
            constraints: vec![
                ConstraintD::new(vec![1.0], 3.0),
                ConstraintD::new(vec![-1.0], 1.0),
            ],
        };
        match lp_d_sequential(&inst).outcome {
            LpOutcomeD::Optimal(x) => assert!((x[0] - 3.0).abs() < 1e-9),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn matches_2d_solver() {
        use crate::seidel::LpOutcome;
        use ri_core::engine::Problem;
        use ri_geometry::Point2;
        for seed in 0..8 {
            let inst2 = crate::workloads::tangent_instance(200, seed);
            let instd = LpInstanceD {
                objective: vec![inst2.objective.x, inst2.objective.y],
                constraints: inst2
                    .constraints
                    .iter()
                    .map(|c| ConstraintD::new(vec![c.normal.x, c.normal.y], c.bound))
                    .collect(),
            };
            let got = lp_d_parallel(&instd).outcome;
            let want = crate::LpProblem::new(&inst2).solve(&RunConfig::new()).0;
            match (got, want) {
                (LpOutcomeD::Optimal(x), LpOutcome::Optimal(y)) => {
                    let p = Point2::new(x[0], x[1]);
                    assert!(p.dist(y) < 1e-5, "seed {seed}: {p} vs {y}");
                }
                (a, b) => panic!("seed {seed}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn three_dimensional_simplex() {
        // max x+y+z s.t. x ≤ 1, y ≤ 2, z ≤ 3: optimum (1, 2, 3).
        let e = |k: usize| {
            let mut v = vec![0.0; 3];
            v[k] = 1.0;
            v
        };
        let inst = LpInstanceD {
            objective: vec![1.0, 1.0, 1.0],
            constraints: vec![
                ConstraintD::new(e(0), 1.0),
                ConstraintD::new(e(1), 2.0),
                ConstraintD::new(e(2), 3.0),
            ],
        };
        match lp_d_sequential(&inst).outcome {
            LpOutcomeD::Optimal(x) => {
                assert!((x[0] - 1.0).abs() < 1e-6, "{x:?}");
                assert!((x[1] - 2.0).abs() < 1e-6, "{x:?}");
                assert!((x[2] - 3.0).abs() < 1e-6, "{x:?}");
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn tangent_sphere_optimum_feasible_and_extremal() {
        for d in [2usize, 3, 4] {
            for seed in 0..4 {
                let inst = tangent_instance_d(d, 300, seed);
                let run = lp_d_parallel(&inst);
                let LpOutcomeD::Optimal(x) = run.outcome else {
                    panic!("d={d} seed {seed}: tangent instance infeasible?")
                };
                // Feasible...
                for c in &inst.constraints {
                    assert!(
                        c.violation(&x) <= 1e-6,
                        "d={d}: violated by {}",
                        c.violation(&x)
                    );
                }
                // ...and at least as good as the inscribed-sphere point in
                // the objective direction (obj is a unit vector; n̂·x ≤ 1
                // polytope contains the unit sphere).
                let val = dot(&inst.objective, &x);
                assert!(val >= 1.0 - 1e-6, "d={d}: objective value {val} < 1");
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_d3() {
        for seed in 0..6 {
            let inst = tangent_instance_d(3, 400, seed);
            let seq = lp_d_sequential(&inst);
            let par = lp_d_parallel(&inst);
            match (&seq.outcome, &par.outcome) {
                (LpOutcomeD::Optimal(x), LpOutcomeD::Optimal(y)) => {
                    let dist: f64 = x
                        .iter()
                        .zip(y)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt();
                    assert!(dist < 1e-6, "seed {seed}: {x:?} vs {y:?}");
                }
                (a, b) => panic!("seed {seed}: {a:?} vs {b:?}"),
            }
            assert_eq!(seq.stats.specials, par.stats.specials);
        }
    }

    #[test]
    fn specials_scale_with_dimension() {
        // Backwards analysis: ≤ d/j probability ⇒ ≈ d·H_n expected specials.
        let n = 2000;
        let hn = ri_core::harmonic(n);
        for d in [2usize, 3, 4] {
            let mut total = 0usize;
            let trials = 6;
            for seed in 0..trials {
                total += lp_d_parallel(&tangent_instance_d(d, n, seed))
                    .stats
                    .specials
                    .len();
            }
            let avg = total as f64 / trials as f64;
            assert!(
                avg <= d as f64 * hn + 5.0,
                "d={d}: avg specials {avg} above d·H_n = {}",
                d as f64 * hn
            );
        }
    }

    #[test]
    fn infeasible_detected_d3() {
        let mut inst = tangent_instance_d(3, 50, 1);
        inst.constraints
            .push(ConstraintD::new(vec![1.0, 0.0, 0.0], -2.0));
        inst.constraints
            .push(ConstraintD::new(vec![-1.0, 0.0, 0.0], -2.0));
        assert_eq!(lp_d_parallel(&inst).outcome, LpOutcomeD::Infeasible);
    }
}
