//! LP workload generators (seeded, reproducible).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ri_geometry::Point2;

use crate::seidel::{Constraint, LpInstance};

/// Constraints tangent to the unit disk: `n̂ · x ≤ 1` for random unit
/// normals `n̂`. Always feasible (the unit disk is inside every halfplane),
/// the feasible region is a random polygon circumscribing the disk, and
/// with a random objective the optimum is a non-degenerate vertex — the
/// standard benign-but-nontrivial Seidel workload.
pub fn tangent_instance(n: usize, seed: u64) -> LpInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut angle = || rng.gen::<f64>() * std::f64::consts::TAU;
    let objective = {
        let a = angle();
        Point2::new(a.cos(), a.sin())
    };
    let constraints = (0..n)
        .map(|_| {
            let a = angle();
            Constraint::new(Point2::new(a.cos(), a.sin()), 1.0)
        })
        .collect();
    LpInstance {
        objective,
        constraints,
    }
}

/// A feasible instance whose optimum moves many times: constraints tangent
/// to a shrinking spiral of disks (more special iterations early).
pub fn shrinking_instance(n: usize, seed: u64) -> LpInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let objective = Point2::new(1.0, 0.3);
    let constraints = (0..n)
        .map(|i| {
            let a = rng.gen::<f64>() * std::f64::consts::TAU;
            let radius = 1.0 + 10.0 / (1.0 + i as f64);
            Constraint::new(Point2::new(a.cos(), a.sin()), radius)
        })
        .collect();
    LpInstance {
        objective,
        constraints,
    }
}

/// An infeasible instance: tangent constraints plus an early pair of
/// contradictory halfplanes (`x ≤ −2`, `−x ≤ −2`) shuffled in.
pub fn infeasible_instance(n: usize, seed: u64) -> LpInstance {
    let mut inst = tangent_instance(n.saturating_sub(2), seed);
    inst.constraints
        .push(Constraint::new(Point2::new(1.0, 0.0), -2.0));
    inst.constraints
        .push(Constraint::new(Point2::new(-1.0, 0.0), -2.0));
    // Deterministic shuffle so the contradiction is discovered mid-run.
    let order = ri_pram::random_permutation(inst.constraints.len(), seed ^ 0xbad);
    inst.constraints = order.iter().map(|&i| inst.constraints[i]).collect();
    inst
}

/// Tangent-degenerate instance: half the unit normals crowd into a
/// ±1e-4 cone around the objective direction (the rest are spread), all
/// with bound 1. The optimum vertex is the intersection of two
/// near-parallel tangents and every crowd member is within ~1e-8 of
/// optimal, so each late crowd arrival is a near-tie for the basis —
/// Devillers' degenerate regime for the incremental LP. Always feasible
/// (the unit disk is inside every halfplane).
pub fn degenerate_instance(n: usize, seed: u64) -> LpInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let th_star = rng.gen::<f64>() * std::f64::consts::TAU;
    let objective = Point2::new(th_star.cos(), th_star.sin());
    let constraints = (0..n)
        .map(|i| {
            let a = if i % 2 == 0 {
                th_star + (rng.gen::<f64>() - 0.5) * 2e-4
            } else {
                rng.gen::<f64>() * std::f64::consts::TAU
            };
            Constraint::new(Point2::new(a.cos(), a.sin()), 1.0)
        })
        .collect();
    LpInstance {
        objective,
        constraints,
    }
}

/// Feasible by a sliver: tangent constraints plus an antiparallel pair
/// `n̂·x ≤ 1`, `−n̂·x ≤ −(1 − 1e-6)` shuffled in, leaving a band of
/// width 1e-6 — three orders of magnitude above Seidel's 1e-9 epsilon,
/// so the outcome is deterministically optimal, but every violation
/// test near the band is small. The near-infeasible twin of
/// [`infeasible_instance`].
pub fn near_infeasible_instance(n: usize, seed: u64) -> LpInstance {
    const BAND: f64 = 1e-6;
    let mut inst = tangent_instance(n.saturating_sub(2), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11f);
    let a = rng.gen::<f64>() * std::f64::consts::TAU;
    let nhat = Point2::new(a.cos(), a.sin());
    inst.constraints.push(Constraint::new(nhat, 1.0));
    inst.constraints.push(Constraint::new(
        Point2::new(-nhat.x, -nhat.y),
        -(1.0 - BAND),
    ));
    let order = ri_pram::random_permutation(inst.constraints.len(), seed ^ 0x51e);
    inst.constraints = order.iter().map(|&i| inst.constraints[i]).collect();
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seidel::LpOutcome;
    use ri_core::engine::{Problem, RunConfig};

    fn solve_parallel(inst: &LpInstance) -> LpOutcome {
        crate::LpProblem::new(inst).solve(&RunConfig::new()).0
    }

    #[test]
    fn tangent_is_reproducible() {
        let a = tangent_instance(50, 1);
        let b = tangent_instance(50, 1);
        assert_eq!(a.constraints.len(), b.constraints.len());
        assert_eq!(a.objective, b.objective);
        assert!(a
            .constraints
            .iter()
            .zip(&b.constraints)
            .all(|(x, y)| x == y));
    }

    #[test]
    fn tangent_contains_unit_disk() {
        let inst = tangent_instance(100, 2);
        // Origin is strictly feasible.
        for c in &inst.constraints {
            assert!(c.violation(Point2::new(0.0, 0.0)) < 0.0);
        }
    }

    #[test]
    fn infeasible_instance_is_infeasible() {
        for seed in 0..5 {
            let inst = infeasible_instance(64, seed);
            assert_eq!(solve_parallel(&inst), LpOutcome::Infeasible);
        }
    }

    #[test]
    fn degenerate_instance_feasible_with_near_ties() {
        for seed in 0..5 {
            let inst = degenerate_instance(128, seed);
            // Strictly feasible at the origin.
            for c in &inst.constraints {
                assert!(c.violation(Point2::new(0.0, 0.0)) < 0.0);
            }
            match solve_parallel(&inst) {
                LpOutcome::Optimal(x) => {
                    // The optimum sits on the crowded tangent bundle:
                    // objective value ≈ 1.
                    let v = inst.objective.x * x.x + inst.objective.y * x.y;
                    assert!((v - 1.0).abs() < 1e-3, "objective value {v}");
                }
                o => panic!("expected optimal, got {o:?}"),
            }
        }
    }

    #[test]
    fn near_infeasible_instance_is_feasible() {
        for seed in 0..5 {
            let inst = near_infeasible_instance(64, seed);
            match solve_parallel(&inst) {
                LpOutcome::Optimal(_) => {}
                o => panic!("seed {seed}: expected optimal, got {o:?}"),
            }
        }
    }

    #[test]
    fn shrinking_instance_feasible() {
        let inst = shrinking_instance(200, 3);
        match solve_parallel(&inst) {
            LpOutcome::Optimal(_) => {}
            o => panic!("expected optimal, got {o:?}"),
        }
    }
}
