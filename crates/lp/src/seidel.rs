//! The Seidel LP state machine and its Type 2 plumbing.

use rayon::prelude::*;

use ri_core::engine::{execute_type2, ExecMode, RunConfig, RunReport};
use ri_core::Type2Algorithm;
use ri_geometry::Point2;

/// Numerical tolerance for feasibility tests (relative to the constraint
/// scale; the workloads are normalised so an absolute epsilon suffices).
pub const EPS: f64 = 1e-9;

/// A halfplane constraint `normal · x ≤ bound`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraint {
    /// Outward normal of the halfplane.
    pub normal: Point2,
    /// Right-hand side.
    pub bound: f64,
}

impl Constraint {
    /// Build a constraint.
    pub fn new(normal: Point2, bound: f64) -> Self {
        Constraint { normal, bound }
    }

    /// Signed violation of `x` (positive = infeasible).
    #[inline]
    pub fn violation(&self, x: Point2) -> f64 {
        self.normal.dot(x) - self.bound
    }

    /// Is `x` feasible for this constraint (within tolerance)?
    #[inline]
    pub fn satisfied_by(&self, x: Point2) -> bool {
        self.violation(x) <= EPS
    }
}

/// An LP instance: objective direction plus constraints in insertion
/// (iteration) order.
#[derive(Debug, Clone)]
pub struct LpInstance {
    /// Maximisation direction.
    pub objective: Point2,
    /// Constraints, already in the random insertion order.
    pub constraints: Vec<Constraint>,
}

/// Solver outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LpOutcome {
    /// Unique optimum vertex (within the synthetic bounding box).
    Optimal(Point2),
    /// No feasible point.
    Infeasible,
}

/// Magnitude of the synthetic bounding box (far outside every workload).
const BOX_M: f64 = 1e6;

struct SeidelState<'a> {
    inst: &'a LpInstance,
    /// The two box constraints (implicit iterations −2, −1).
    boxc: [Constraint; 2],
    optimum: Point2,
    infeasible: bool,
    /// Run `run_special`'s 1-D LP with rayon reductions?
    parallel_special: bool,
}

impl<'a> SeidelState<'a> {
    fn new(inst: &'a LpInstance, parallel_special: bool) -> Self {
        // Box: (d̂+ê)·x ≤ M and (d̂−ê)·x ≤ M for unit objective d̂ and its
        // perpendicular ê; the unique optimum of the box alone is M·d̂.
        let d = inst.objective;
        let len = d.norm_sq().sqrt();
        assert!(len > 0.0, "objective must be nonzero");
        let dhat = d * (1.0 / len);
        let ehat = Point2::new(-dhat.y, dhat.x);
        let boxc = [
            Constraint::new(dhat + ehat, BOX_M),
            Constraint::new(dhat - ehat, BOX_M),
        ];
        let optimum = dhat * BOX_M;
        SeidelState {
            inst,
            boxc,
            optimum,
            infeasible: false,
            parallel_special,
        }
    }

    /// Solve the 1-D LP on the line of constraint `k` over the box
    /// constraints and constraints `0..k`: maximise `objective · x` with
    /// `x = p + t·dir` on the line `normal_k · x = bound_k`.
    fn one_dimensional_lp(&mut self, k: usize) {
        let ck = self.inst.constraints[k];
        let nn = ck.normal.norm_sq();
        debug_assert!(nn > 0.0, "degenerate constraint normal");
        let p = ck.normal * (ck.bound / nn); // foot point on the line
        let dir = Point2::new(-ck.normal.y, ck.normal.x); // line direction

        // Each earlier constraint clips t to a ray or detects infeasibility.
        // Interval bound per constraint: n·(p + t·dir) ≤ b.
        #[derive(Clone, Copy)]
        enum Clip {
            Upper(f64),
            Lower(f64),
            None,
            Infeasible,
        }
        let clip = |c: &Constraint| -> Clip {
            let a = c.normal.dot(dir);
            let rhs = c.bound - c.normal.dot(p);
            if a.abs() <= EPS * (1.0 + c.normal.norm_sq().sqrt()) {
                // Parallel to the line: either irrelevant or fatal.
                if rhs < -EPS {
                    Clip::Infeasible
                } else {
                    Clip::None
                }
            } else if a > 0.0 {
                Clip::Upper(rhs / a)
            } else {
                Clip::Lower(rhs / a)
            }
        };

        let fold = |acc: (f64, f64, bool), c: Clip| -> (f64, f64, bool) {
            let (lo, hi, bad) = acc;
            match c {
                Clip::Upper(t) => (lo, hi.min(t), bad),
                Clip::Lower(t) => (lo.max(t), hi, bad),
                Clip::None => acc,
                Clip::Infeasible => (lo, hi, true),
            }
        };
        let merge =
            |a: (f64, f64, bool), b: (f64, f64, bool)| (a.0.max(b.0), a.1.min(b.1), a.2 || b.2);
        let id = (f64::NEG_INFINITY, f64::INFINITY, false);

        let boxed = self.boxc.iter().map(clip).fold(id, fold);
        let (lo, hi, bad) = if self.parallel_special {
            let body = self.inst.constraints[..k]
                .par_iter()
                .map(clip)
                .fold(|| id, fold)
                .reduce(|| id, merge);
            merge(boxed, body)
        } else {
            self.inst.constraints[..k]
                .iter()
                .map(clip)
                .fold(boxed, fold)
        };

        if bad || lo > hi + EPS {
            self.infeasible = true;
            return;
        }
        let along = self.inst.objective.dot(dir);
        let t = if along > 0.0 {
            hi
        } else if along < 0.0 {
            lo
        } else {
            lo.clamp(lo, hi) // objective ⟂ line: any point; take lo
        };
        debug_assert!(t.is_finite(), "1-D LP unbounded despite box");
        self.optimum = p + dir * t;
    }
}

impl Type2Algorithm for SeidelState<'_> {
    fn len(&self) -> usize {
        self.inst.constraints.len()
    }

    fn is_special(&self, k: usize) -> bool {
        !self.infeasible && !self.inst.constraints[k].satisfied_by(self.optimum)
    }

    fn run_regular(&mut self, _k: usize) {}

    fn run_special(&mut self, k: usize) {
        self.one_dimensional_lp(k);
    }
}

/// Engine entry point: solve `inst` under `cfg` (parallel 1-D LPs in
/// parallel mode), returning the outcome and the unified report.
/// Relaxed-mode requests run the exact parallel schedule — Seidel's
/// violation checks are against a basis rebuilt at every special, leaving
/// no useful slack for a relaxed order — and say so in the report.
pub(crate) fn run_with(inst: &LpInstance, cfg: &RunConfig) -> (LpOutcome, RunReport) {
    let fallback = matches!(cfg.mode, ExecMode::Relaxed { .. });
    let exact;
    let cfg = if fallback {
        exact = cfg.clone().parallel();
        &exact
    } else {
        cfg
    };
    let mut st = SeidelState::new(inst, cfg.mode == ExecMode::Parallel);
    let mut report = execute_type2(&mut st, cfg);
    if fallback {
        report.relaxed_fallback = Some("lp has no native relaxed loop; ran exact parallel".into());
    }
    report.algorithm = "lp-seidel".to_string();
    let outcome = if st.infeasible {
        LpOutcome::Infeasible
    } else {
        LpOutcome::Optimal(st.optimum)
    };
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-local stand-in for the retired `LpRun` shape: the outcome
    /// plus the unified report (whose `specials`/`checks` fields the
    /// assertions read).
    struct Run {
        outcome: LpOutcome,
        stats: RunReport,
    }

    fn lp_sequential(inst: &LpInstance) -> Run {
        let (outcome, stats) = run_with(inst, &RunConfig::new().sequential());
        Run { outcome, stats }
    }

    fn lp_parallel(inst: &LpInstance) -> Run {
        let (outcome, stats) = run_with(inst, &RunConfig::new().parallel());
        Run { outcome, stats }
    }

    fn pt(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    /// Brute-force reference: best feasible intersection vertex among all
    /// constraint pairs (incl. the box), or Infeasible.
    pub(crate) fn brute_force(inst: &LpInstance) -> LpOutcome {
        let d = inst.objective;
        let len = d.norm_sq().sqrt();
        let dhat = d * (1.0 / len);
        let ehat = Point2::new(-dhat.y, dhat.x);
        let mut cs = vec![
            Constraint::new(dhat + ehat, BOX_M),
            Constraint::new(dhat - ehat, BOX_M),
        ];
        cs.extend_from_slice(&inst.constraints);
        let mut best: Option<Point2> = None;
        for i in 0..cs.len() {
            for j in i + 1..cs.len() {
                let (a, b) = (cs[i], cs[j]);
                let det = a.normal.cross(b.normal);
                if det.abs() < 1e-12 {
                    continue;
                }
                let x = Point2::new(
                    (a.bound * b.normal.y - b.bound * a.normal.y) / det,
                    (a.normal.x * b.bound - b.normal.x * a.bound) / det,
                );
                if cs.iter().all(|c| c.violation(x) <= 1e-6) {
                    let better = match best {
                        None => true,
                        Some(cur) => inst.objective.dot(x) > inst.objective.dot(cur),
                    };
                    if better {
                        best = Some(x);
                    }
                }
            }
        }
        match best {
            Some(x) => LpOutcome::Optimal(x),
            None => LpOutcome::Infeasible,
        }
    }

    fn assert_same(a: LpOutcome, b: LpOutcome) {
        match (a, b) {
            (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
            (LpOutcome::Optimal(x), LpOutcome::Optimal(y)) => {
                assert!(
                    x.dist(y) < 1e-5,
                    "optima differ: {x} vs {y} (dist {})",
                    x.dist(y)
                );
            }
            _ => panic!("outcome mismatch: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn simple_triangle() {
        // Feasible region: x ≤ 1, y ≤ 1, x + y ≥ 0.5; maximize x + y -> (1,1).
        let inst = LpInstance {
            objective: pt(1.0, 1.0),
            constraints: vec![
                Constraint::new(pt(1.0, 0.0), 1.0),
                Constraint::new(pt(0.0, 1.0), 1.0),
                Constraint::new(pt(-1.0, -1.0), -0.5),
            ],
        };
        match lp_sequential(&inst).outcome {
            LpOutcome::Optimal(x) => assert!(x.dist(pt(1.0, 1.0)) < 1e-9),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ -1 and x ≥ 1.
        let inst = LpInstance {
            objective: pt(1.0, 0.0),
            constraints: vec![
                Constraint::new(pt(1.0, 0.0), -1.0),
                Constraint::new(pt(-1.0, 0.0), -1.0),
            ],
        };
        assert_eq!(lp_sequential(&inst).outcome, LpOutcome::Infeasible);
        assert_eq!(lp_parallel(&inst).outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn unconstrained_hits_box() {
        let inst = LpInstance {
            objective: pt(0.0, 1.0),
            constraints: vec![],
        };
        match lp_sequential(&inst).outcome {
            LpOutcome::Optimal(x) => assert!(x.dist(pt(0.0, BOX_M)) < 1e-3),
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn parallel_matches_sequential_and_bruteforce() {
        for seed in 0..10 {
            let inst = crate::workloads::tangent_instance(60, seed);
            let seq = lp_sequential(&inst);
            let par = lp_parallel(&inst);
            assert_same(seq.outcome, par.outcome);
            assert_same(seq.outcome, brute_force(&inst));
            assert_eq!(seq.stats.specials, par.stats.specials, "seed {seed}");
        }
    }

    #[test]
    fn specials_are_logarithmic() {
        let mut total = 0usize;
        let trials = 10;
        let n = 2000;
        for seed in 0..trials {
            let inst = crate::workloads::tangent_instance(n, seed);
            total += lp_parallel(&inst).stats.specials.len();
        }
        let avg = total as f64 / trials as f64;
        let bound = 2.0 * ri_core::harmonic(n) + 4.0;
        assert!(avg <= bound, "avg specials {avg} above 2·H_n + 4 = {bound}");
    }

    #[test]
    fn checks_are_linear() {
        // Expected total check work of the prefix executor is O(n).
        let n = 1 << 14;
        let inst = crate::workloads::tangent_instance(n, 3);
        let run = lp_parallel(&inst);
        assert!(
            run.stats.checks < 8 * n as u64,
            "checks {} not O(n)",
            run.stats.checks
        );
    }
}
