//! The problem-level API: [`LpProblem`] (2-D) and [`LpProblemD`] (d-D),
//! solving through the unified engine to `(LpOutcome, RunReport)`.

use ri_core::engine::{Executable, Problem, RunConfig, RunReport, Runner};

use crate::highdim::{run_with_d, LpInstanceD, LpOutcomeD};
use crate::seidel::{run_with, LpInstance, LpOutcome};

/// Seidel's randomized incremental 2-D linear programming (§5.1 of the
/// paper, Type 2). Constraints are processed in the order given
/// (pre-shuffle them for the paper's expectation bounds).
///
/// ```
/// use ri_core::engine::{Problem, RunConfig};
/// use ri_lp::{LpOutcome, LpProblem};
///
/// let inst = ri_lp::workloads::tangent_instance(512, 3);
/// let (outcome, report) = LpProblem::new(&inst).solve(&RunConfig::new());
/// assert!(matches!(outcome, LpOutcome::Optimal(_)));
/// assert!(report.specials.len() < 60); // O(log n) tight constraints whp
/// ```
#[derive(Debug)]
pub struct LpProblem<'a> {
    inst: &'a LpInstance,
}

impl<'a> LpProblem<'a> {
    /// An LP problem over `inst`.
    pub fn new(inst: &'a LpInstance) -> Self {
        LpProblem { inst }
    }
}

struct LpExec<'a> {
    inst: &'a LpInstance,
    out: Option<LpOutcome>,
}

impl Executable for LpExec<'_> {
    fn name(&self) -> &str {
        "lp-seidel"
    }
    fn execute(&mut self, cfg: &RunConfig) -> RunReport {
        let (outcome, report) = run_with(self.inst, cfg);
        self.out = Some(outcome);
        report
    }
}

impl Problem for LpProblem<'_> {
    type Output = LpOutcome;

    fn solve(&self, cfg: &RunConfig) -> (LpOutcome, RunReport) {
        let mut exec = LpExec {
            inst: self.inst,
            out: None,
        };
        let report = Runner::new(cfg.clone()).run(&mut exec);
        (exec.out.expect("execute always produces output"), report)
    }
}

/// The d-dimensional extension (recursive dimension reduction with the
/// same random order for every sub-problem).
#[derive(Debug)]
pub struct LpProblemD<'a> {
    inst: &'a LpInstanceD,
}

impl<'a> LpProblemD<'a> {
    /// A d-dimensional LP problem over `inst`.
    pub fn new(inst: &'a LpInstanceD) -> Self {
        LpProblemD { inst }
    }
}

struct LpExecD<'a> {
    inst: &'a LpInstanceD,
    out: Option<LpOutcomeD>,
}

impl Executable for LpExecD<'_> {
    fn name(&self) -> &str {
        "lp-seidel-d"
    }
    fn execute(&mut self, cfg: &RunConfig) -> RunReport {
        let (outcome, report) = run_with_d(self.inst, cfg);
        self.out = Some(outcome);
        report
    }
}

impl Problem for LpProblemD<'_> {
    type Output = LpOutcomeD;

    fn solve(&self, cfg: &RunConfig) -> (LpOutcomeD, RunReport) {
        let mut exec = LpExecD {
            inst: self.inst,
            out: None,
        };
        let report = Runner::new(cfg.clone()).run(&mut exec);
        (exec.out.expect("execute always produces output"), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_agree_on_tangent_workload() {
        let inst = crate::workloads::tangent_instance(2000, 9);
        let problem = LpProblem::new(&inst);
        let (seq, seq_report) = problem.solve(&RunConfig::new().sequential());
        let (par, par_report) = problem.solve(&RunConfig::new().parallel());
        match (seq, par) {
            (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => assert_eq!(a, b),
            other => panic!("unexpected outcomes {other:?}"),
        }
        assert_eq!(seq_report.specials, par_report.specials);
        assert!(par_report.total_sub_rounds() >= par_report.specials.len());
    }

    #[test]
    fn high_dim_modes_agree() {
        let inst = crate::highdim::tangent_instance_d(4, 300, 2);
        let problem = LpProblemD::new(&inst);
        let (seq, _) = problem.solve(&RunConfig::new().sequential());
        let (par, report) = problem.solve(&RunConfig::new().parallel());
        match (seq, par) {
            (LpOutcomeD::Optimal(a), LpOutcomeD::Optimal(b)) => {
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-9);
                }
            }
            other => panic!("unexpected outcomes {other:?}"),
        }
        assert_eq!(report.algorithm, "lp-seidel-d");
    }
}
