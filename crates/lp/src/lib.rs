//! # `ri-lp` — Seidel's randomized incremental 2-D linear programming
//! (§5.1 of the paper, Type 2)
//!
//! Maximise `objective · x` subject to halfplane constraints
//! `normalᵢ · x ≤ boundᵢ`, constraints added one-by-one in random order
//! while maintaining the optimum vertex.
//!
//! * A **regular** iteration is a constraint the current optimum already
//!   satisfies — `O(1)` work, nothing changes.
//! * A **special** iteration is a *tight* constraint (the optimum violates
//!   it): the new optimum lies on that constraint's line, found by a
//!   one-dimensional LP over all earlier constraints (`O(i)` work — a
//!   parallel min/max reduction in the parallel version).
//!
//! By backwards analysis the probability iteration `j` is special is at
//! most `2/j` (the optimum is defined by ≤ 2 constraints), giving `O(n)`
//! expected work and — through the Type 2 executor — `O(log n)` dependence
//! depth (Theorem 5.1).
//!
//! Boundedness: following Seidel, two synthetic *box constraints* that
//! bound the optimum in the objective direction are treated as implicit
//! iterations `−2, −1`; they make the initial optimum unique and keep every
//! 1-D LP bounded.
//!
//! The [`highdim`] module implements the paper's d > 2 extension
//! (recursive dimension reduction with the same random order for every
//! sub-problem).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod highdim;
pub mod problem;
pub mod registry;
mod seidel;
pub mod workloads;

pub use highdim::{tangent_instance_d, ConstraintD, LpInstanceD, LpOutcomeD};
pub use problem::{LpProblem, LpProblemD};
pub use seidel::{Constraint, LpInstance, LpOutcome, EPS};
