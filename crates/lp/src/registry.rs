//! Registry entries: `"lp"` (Seidel's 2-D LP, §5.1, Type 2) and `"lp-d"`
//! (the d-dimensional extension). The 2-D workload shape picks a
//! generator from [`crate::workloads`] (`"tangent"` default,
//! `"shrinking"`, `"infeasible"`, plus the adversarial `"degenerate"`
//! and `"near-infeasible"` families); `lp-d` solves the tangent-sphere
//! (`"tangent"`, default) or `"degenerate"` workload with `param` as
//! the dimension (default 3).

use ri_core::engine::registry::{ErasedProblem, OutputSummary, Registry};
use ri_core::engine::{Problem, RunConfig, RunReport};

use crate::highdim::{degenerate_instance_d, tangent_instance_d, LpInstanceD, LpOutcomeD};
use crate::seidel::{LpInstance, LpOutcome};
use crate::{workloads, LpProblem, LpProblemD};

/// Register this crate's problems.
pub fn register(reg: &mut Registry) {
    reg.register(
        "lp",
        "Seidel's randomized incremental 2-D LP (§5.1, Type 2)",
        |spec| {
            let inst = match spec.shape_or("tangent") {
                "tangent" => workloads::tangent_instance(spec.n, spec.seed),
                "shrinking" => workloads::shrinking_instance(spec.n, spec.seed),
                "infeasible" => workloads::infeasible_instance(spec.n, spec.seed),
                "degenerate" => workloads::degenerate_instance(spec.n, spec.seed),
                "near-infeasible" => workloads::near_infeasible_instance(spec.n, spec.seed),
                other => {
                    return Err(format!(
                        "unknown lp workload `{other}` (known: tangent, shrinking, \
                         infeasible, degenerate, near-infeasible)"
                    ))
                }
            };
            Ok(Box::new(LpWorkload { inst }))
        },
    );
    reg.register(
        "lp-d",
        "d-dimensional Seidel LP on the tangent-sphere workload (param = dimension)",
        |spec| {
            let d = spec.param_or(3.0);
            if d < 1.0 || d.fract() != 0.0 || d > 16.0 {
                return Err(format!(
                    "lp-d dimension must be an integer in 1..=16, got {d}"
                ));
            }
            let inst = match spec.shape_or("tangent") {
                "tangent" => tangent_instance_d(d as usize, spec.n, spec.seed),
                "degenerate" => degenerate_instance_d(d as usize, spec.n, spec.seed),
                other => {
                    return Err(format!(
                        "unknown lp-d workload `{other}` (known: tangent, degenerate)"
                    ))
                }
            };
            Ok(Box::new(LpDWorkload { inst }))
        },
    );
}

struct LpWorkload {
    inst: LpInstance,
}

impl ErasedProblem for LpWorkload {
    fn name(&self) -> &str {
        "lp"
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (outcome, report) = LpProblem::new(&self.inst).solve(cfg);
        let mut s = OutputSummary::new();
        s.answer_num("constraints", self.inst.constraints.len() as f64);
        match outcome {
            LpOutcome::Optimal(x) => {
                // The parallel schedule reproduces the sequential optimum
                // exactly (min/max reductions are associative), so exact
                // coordinates are safe answer fields.
                s.answer_str("outcome", "optimal")
                    .answer_num("x", x.x)
                    .answer_num("y", x.y);
            }
            LpOutcome::Infeasible => {
                s.answer_str("outcome", "infeasible");
            }
        }
        (s, report)
    }
}

struct LpDWorkload {
    inst: LpInstanceD,
}

impl ErasedProblem for LpDWorkload {
    fn name(&self) -> &str {
        "lp-d"
    }

    fn solve_erased(&self, cfg: &RunConfig) -> (OutputSummary, RunReport) {
        let (outcome, report) = LpProblemD::new(&self.inst).solve(cfg);
        let mut s = OutputSummary::new();
        s.answer_num("constraints", self.inst.constraints.len() as f64)
            .answer_num("dimension", self.inst.objective.len() as f64);
        match outcome {
            LpOutcomeD::Optimal(x) => {
                // Recursive 1-D solves accumulate mode-dependent rounding
                // in the last bits, so the objective value is a metric,
                // not an answer field.
                s.answer_str("outcome", "optimal");
                let value: f64 = self.inst.objective.iter().zip(&x).map(|(a, b)| a * b).sum();
                s.metric_num("objective_value", value);
            }
            LpOutcomeD::Infeasible => {
                s.answer_str("outcome", "infeasible");
            }
        }
        (s, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ri_core::engine::registry::WorkloadSpec;

    #[test]
    fn registered_names_solve() {
        let mut reg = Registry::new();
        register(&mut reg);
        let (summary, _) = reg
            .solve("lp", &WorkloadSpec::new(400, 2), &RunConfig::new())
            .unwrap();
        assert!(summary.to_json().contains("\"outcome\":\"optimal\""));
        let (summary, _) = reg
            .solve(
                "lp",
                &WorkloadSpec::new(64, 2).shape("infeasible"),
                &RunConfig::new(),
            )
            .unwrap();
        assert!(summary.to_json().contains("\"outcome\":\"infeasible\""));
        let (summary, _) = reg
            .solve(
                "lp-d",
                &WorkloadSpec::new(200, 2).param(4.0),
                &RunConfig::new(),
            )
            .unwrap();
        assert!(summary.to_json().contains("\"dimension\":4"));
    }

    #[test]
    fn bad_specs_rejected() {
        let mut reg = Registry::new();
        register(&mut reg);
        assert!(reg
            .construct("lp", &WorkloadSpec::new(10, 1).shape("sideways"))
            .is_err());
        assert!(reg
            .construct("lp-d", &WorkloadSpec::new(10, 1).param(2.5))
            .is_err());
        assert!(reg
            .construct("lp-d", &WorkloadSpec::new(10, 1).shape("sideways"))
            .is_err());
    }

    #[test]
    fn adversarial_shapes_solve() {
        let mut reg = Registry::new();
        register(&mut reg);
        for shape in ["degenerate", "near-infeasible"] {
            let (summary, _) = reg
                .solve(
                    "lp",
                    &WorkloadSpec::new(128, 4).shape(shape),
                    &RunConfig::new(),
                )
                .unwrap();
            assert!(
                summary.to_json().contains("\"outcome\":\"optimal\""),
                "{shape}"
            );
        }
        let (summary, _) = reg
            .solve(
                "lp-d",
                &WorkloadSpec::new(128, 4).shape("degenerate").param(4.0),
                &RunConfig::new(),
            )
            .unwrap();
        assert!(summary.to_json().contains("\"outcome\":\"optimal\""));
    }
}
