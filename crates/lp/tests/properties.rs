//! Property tests for Seidel LP: agreement between sequential, parallel,
//! and a brute-force vertex enumeration on arbitrary constraint sets.

use proptest::prelude::*;
use ri_core::engine::{Problem, RunConfig};
use ri_geometry::Point2;
use ri_lp::{Constraint, LpInstance, LpOutcome, LpProblem};

fn seq_cfg() -> RunConfig {
    RunConfig::new().sequential().instrument(false)
}

fn par_cfg() -> RunConfig {
    RunConfig::new().parallel().instrument(false)
}

/// Random constraints with normals on a coarse angular grid and bounds in
/// a small range: plenty of near-parallel pairs and infeasible instances.
fn arb_instance() -> impl Strategy<Value = LpInstance> {
    let constraint = (0usize..48, -4i32..=8).prop_map(|(a, b)| {
        let th = a as f64 * std::f64::consts::TAU / 48.0;
        Constraint::new(Point2::new(th.cos(), th.sin()), b as f64)
    });
    (0usize..48, proptest::collection::vec(constraint, 0..40)).prop_map(|(oa, constraints)| {
        let th = oa as f64 * std::f64::consts::TAU / 48.0 + 0.013;
        LpInstance {
            objective: Point2::new(th.cos(), th.sin()),
            constraints,
        }
    })
}

/// Brute force: best feasible vertex among all constraint-pair
/// intersections (including the solver's own box construction).
fn brute_force(inst: &LpInstance) -> LpOutcome {
    let d = inst.objective;
    let len = d.norm_sq().sqrt();
    let dhat = d * (1.0 / len);
    let ehat = Point2::new(-dhat.y, dhat.x);
    let mut cs = vec![
        Constraint::new(dhat + ehat, 1e6),
        Constraint::new(dhat - ehat, 1e6),
    ];
    cs.extend_from_slice(&inst.constraints);
    let mut best: Option<Point2> = None;
    for i in 0..cs.len() {
        for j in i + 1..cs.len() {
            let (a, b) = (cs[i], cs[j]);
            let det = a.normal.cross(b.normal);
            if det.abs() < 1e-9 {
                continue;
            }
            let x = Point2::new(
                (a.bound * b.normal.y - b.bound * a.normal.y) / det,
                (a.normal.x * b.bound - b.normal.x * a.bound) / det,
            );
            if cs.iter().all(|c| c.violation(x) <= 1e-6)
                && best.is_none_or(|cur| inst.objective.dot(x) > inst.objective.dot(cur))
            {
                best = Some(x);
            }
        }
    }
    match best {
        Some(x) => LpOutcome::Optimal(x),
        None => LpOutcome::Infeasible,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parallel_equals_sequential(inst in arb_instance()) {
        let (seq_outcome, seq_report) = LpProblem::new(&inst).solve(&seq_cfg());
        let (par_outcome, par_report) = LpProblem::new(&inst).solve(&par_cfg());
        match (seq_outcome, par_outcome) {
            (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
            (LpOutcome::Optimal(x), LpOutcome::Optimal(y)) => {
                prop_assert!(x.dist(y) < 1e-6, "{x} vs {y}");
            }
            (a, b) => prop_assert!(false, "outcome mismatch {a:?} vs {b:?}"),
        }
        prop_assert_eq!(seq_report.specials, par_report.specials);
    }

    #[test]
    fn objective_value_matches_brute_force(inst in arb_instance()) {
        let got = LpProblem::new(&inst).solve(&par_cfg()).0;
        let want = brute_force(&inst);
        match (got, want) {
            (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
            (LpOutcome::Optimal(x), LpOutcome::Optimal(y)) => {
                // Compare objective values (the optimum vertex may be
                // non-unique under the grid normals).
                let (vx, vy) = (inst.objective.dot(x), inst.objective.dot(y));
                prop_assert!(
                    (vx - vy).abs() <= 1e-5 * (1.0 + vy.abs()),
                    "objective {vx} vs brute-force {vy}"
                );
            }
            (a, b) => prop_assert!(false, "outcome mismatch: got {a:?}, brute force {b:?}"),
        }
    }

    #[test]
    fn optimum_is_feasible(inst in arb_instance()) {
        if let LpOutcome::Optimal(x) = LpProblem::new(&inst).solve(&par_cfg()).0 {
            for c in &inst.constraints {
                prop_assert!(c.violation(x) <= 1e-6, "constraint violated by {}", c.violation(x));
            }
        }
    }
}
