//! Scratch-arena hygiene: the round engine's reusable buffers must never
//! leak state between runs. For **every** registered problem, a thread
//! whose scratch pool has already served several runs (warm pool, hits
//! guaranteed) must produce an `OutputSummary.answer` byte-identical to a
//! run on a freshly spawned thread (empty pool, misses only) — at every
//! thread width, parallel and sequential.

use proptest::prelude::*;

use parallel_ri::registry;
use ri_core::engine::json::Value;
use ri_core::engine::OutputSummary;
use ri_core::{RunConfig, WorkloadSpec};

const ALL_PROBLEMS: [&str; 9] = [
    "sort",
    "sort-batch",
    "delaunay",
    "lp",
    "lp-d",
    "closest-pair",
    "enclosing",
    "le-lists",
    "scc",
];

fn spec_for(name: &str, n: usize, seed: u64) -> WorkloadSpec {
    let spec = WorkloadSpec::new(n, seed);
    match name {
        "lp-d" => spec.param(3.0),
        "le-lists" => spec.param(4.0),
        _ => spec,
    }
}

/// The mode-invariant answer as a canonical JSON string: equal strings =
/// byte-identical answers.
fn fingerprint(summary: &OutputSummary) -> String {
    Value::Obj(summary.answer().to_vec()).write()
}

fn solve_fingerprint(name: &str, n: usize, workload_seed: u64, cfg: &RunConfig) -> String {
    let reg = registry();
    let (summary, _report) = reg
        .solve(name, &spec_for(name, n, workload_seed), cfg)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    fingerprint(&summary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Repeated `Runner::run`s on one thread (scratch pool warm, buffers
    /// reused across runs) answer byte-identically to a fresh-state run
    /// (new thread, empty pool) for every registered problem at 1–8
    /// threads.
    #[test]
    fn warm_scratch_answers_equal_fresh_state_answers(
        n in 96usize..256,
        workload_seed in 1u64..1000,
        run_seed in 1u64..1000,
    ) {
        for name in ALL_PROBLEMS {
            // Fresh-state reference: a brand-new thread has an empty
            // scratch pool by construction.
            let fresh = {
                let name = name.to_string();
                let cfg = RunConfig::new().seed(run_seed).parallel().instrument(false);
                std::thread::spawn(move || solve_fingerprint(&name, n, workload_seed, &cfg))
                    .join()
                    .expect("fresh-state solve")
            };
            // Warm-pool runs: same thread, repeatedly, across widths and
            // modes. Every answer must equal the fresh-state one.
            for threads in [1usize, 2, 4, 8] {
                let cfg = RunConfig::new()
                    .seed(run_seed)
                    .parallel()
                    .threads(threads)
                    .instrument(false);
                for repeat in 0..2 {
                    let warm = solve_fingerprint(name, n, workload_seed, &cfg);
                    prop_assert_eq!(
                        &warm, &fresh,
                        "{} diverged on warm-scratch run {} at {} threads",
                        name, repeat, threads
                    );
                }
            }
            let seq = solve_fingerprint(
                name,
                n,
                workload_seed,
                &RunConfig::new().seed(run_seed).sequential().instrument(false),
            );
            prop_assert_eq!(&seq, &fresh, "{}: sequential baseline diverged", name);
        }
    }
}

/// Deterministic (non-proptest) smoke: scratch reuse actually happens on
/// repeated runs — the second run's report shows pool hits — while the
/// answers stay identical.
#[test]
fn repeated_runs_reuse_scratch_and_stay_identical() {
    let reg = registry();
    let cfg = RunConfig::new().seed(3).parallel().threads(2);
    let spec = spec_for("sort", 4096, 5);
    let (first_summary, _first) = reg.solve("sort", &spec, &cfg).unwrap();
    let (second_summary, second) = reg.solve("sort", &spec, &cfg).unwrap();
    assert_eq!(fingerprint(&first_summary), fingerprint(&second_summary));
    assert!(
        second.scratch_hits > 0,
        "second run must reuse pooled buffers, report: {}",
        second.to_json()
    );
}
