//! Engine-level integration tests: one `Runner`/`RunConfig` path over all
//! three algorithm classes, sequential/parallel output equivalence, and
//! report serialization across crate boundaries.

use parallel_ri::prelude::*;

/// One algorithm per class, each solved in both modes through the same
/// `RunConfig` surface: outputs must be identical (the framework's central
/// correctness claim), and the reports must expose the class's depth
/// semantics.
#[test]
fn sequential_and_parallel_agree_for_each_type() {
    // Type 1: BST sort — identical tree (Theorem 3.2).
    let keys = random_permutation(5000, 21);
    let sort = SortProblem::new(&keys);
    let (sort_seq, sort_seq_report) = sort.solve(&RunConfig::new().sequential());
    let (sort_par, sort_par_report) = sort.solve(&RunConfig::new().parallel());
    assert_eq!(sort_seq.tree, sort_par.tree);
    assert_eq!(sort_seq.comparisons, sort_par.comparisons);
    assert_eq!(sort_seq_report.depth, 5000);
    assert_eq!(sort_par_report.depth, sort_par_report.rounds.rounds());

    // Type 2: closest pair — identical pair, distance, and specials trace.
    let pts = PointDistribution::UniformSquare.generate(4000, 22);
    let cp = ClosestPairProblem::new(&pts);
    let (cp_seq, cp_seq_report) = cp.solve(&RunConfig::new().sequential());
    let (cp_par, cp_par_report) = cp.solve(&RunConfig::new().parallel());
    assert_eq!(cp_seq, cp_par);
    assert_eq!(cp_seq_report.specials, cp_par_report.specials);
    assert_eq!(cp_par_report.depth, cp_par_report.total_sub_rounds());

    // Type 3: LE-lists — identical lists (the combine step reproduces the
    // sequential run exactly).
    let g = parallel_ri::graph::generators::gnm_weighted(2000, 8000, 23, true);
    let le = LeListsProblem::new(&g);
    let cfg = RunConfig::new().seed(24);
    let (le_seq, _) = le.solve(&cfg.clone().sequential());
    let (le_par, le_par_report) = le.solve(&cfg.clone().parallel());
    assert_eq!(le_seq.lists, le_par.lists);
    assert_eq!(le_par_report.depth, le_par_report.rounds.rounds());
    assert!(le_par_report.depth <= 13, "⌈log₂ 2000⌉ + 1 doubling rounds");
}

/// The thread knob is honoured and recorded; single-worker parallel mode
/// still produces identical outputs (determinism does not depend on the
/// worker count).
#[test]
fn thread_count_is_scoped_and_deterministic() {
    let keys = random_permutation(4000, 31);
    let problem = SortProblem::new(&keys);
    let (wide, wide_report) = problem.solve(&RunConfig::new());
    let (narrow, narrow_report) = problem.solve(&RunConfig::new().threads(1));
    assert_eq!(wide.tree, narrow.tree);
    assert_eq!(narrow_report.threads, 1);
    assert!(wide_report.threads >= 1);
    assert_eq!(wide_report.depth, narrow_report.depth);
}

/// Reports from every algorithm survive the JSON round trip bit-exactly,
/// and instrumentation can be disabled.
#[test]
fn reports_serialize_across_algorithms() {
    let cfg = RunConfig::new().seed(7);
    let pts = PointDistribution::UniformSquare.generate(600, 7);
    let g = parallel_ri::graph::generators::gnm(500, 1500, 7, false);
    let inst = ri_lp::workloads::tangent_instance(600, 7);
    let keys = random_permutation(600, 7);

    let reports = vec![
        SortProblem::new(&keys).solve(&cfg).1,
        BatchSortProblem::new(&keys).solve(&cfg).1,
        DelaunayProblem::new(&pts).solve(&cfg).1,
        LpProblem::new(&inst).solve(&cfg).1,
        ClosestPairProblem::new(&pts).solve(&cfg).1,
        EnclosingProblem::new(&pts).solve(&cfg).1,
        LeListsProblem::new(&g).solve(&cfg).1,
        SccProblem::new(&g).solve(&cfg).1,
    ];
    let names: Vec<&str> = reports.iter().map(|r| r.algorithm.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "bst-sort",
            "bst-sort-batch",
            "delaunay",
            "lp-seidel",
            "closest-pair",
            "enclosing-disk",
            "le-lists",
            "scc"
        ]
    );
    for report in &reports {
        let back = RunReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(&back, report, "{} report round-trips", report.algorithm);
        assert!(report.wall_seconds > 0.0, "instrumented run records time");
    }

    // Instrumentation off: no phases, no wall time — everything else equal.
    let quiet = SortProblem::new(&keys)
        .solve(&cfg.clone().instrument(false))
        .1;
    assert!(quiet.phases.is_empty());
    assert_eq!(quiet.wall_seconds, 0.0);
    assert_eq!(quiet.depth, reports[0].depth);
}

/// The generic adapters run through the same Runner path as the Problems.
#[test]
fn adapters_share_the_runner_path() {
    use std::sync::atomic::{AtomicBool, Ordering};

    struct Chain {
        done: Vec<AtomicBool>,
    }
    impl parallel_ri::framework::Type1Algorithm for Chain {
        fn len(&self) -> usize {
            self.done.len()
        }
        fn ready(&self, k: usize) -> bool {
            k == 0 || self.done[k - 1].load(Ordering::Relaxed)
        }
        fn run(&mut self, k: usize) {
            self.done[k].store(true, Ordering::Relaxed);
        }
    }

    let mut chain = Chain {
        done: (0..64).map(|_| AtomicBool::default()).collect(),
    };
    let runner = Runner::new(RunConfig::new().threads(2));
    let report = runner.run(&mut Type1Adapter(&mut chain));
    assert_eq!(report.depth, 64, "a chain has linear dependence depth");
    assert_eq!(report.threads, 2);
    assert_eq!(report.mode, ExecMode::Parallel);
}
