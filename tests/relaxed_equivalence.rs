//! The relaxed-execution gate: for **every** registered problem, a
//! `relaxed:k` run must produce the same answer as the exact parallel
//! schedule — natively where the problem has a k-relaxed loop (sort,
//! closest-pair, delaunay, scc), via the reported exact-parallel fallback
//! everywhere else — at every relaxation factor and pool width.

use parallel_ri::registry;
use ri_core::engine::RunReport;
use ri_core::{ExecMode, RunConfig, WorkloadSpec};

/// Every name the workspace registers, in registration order.
const ALL_PROBLEMS: [&str; 9] = [
    "sort",
    "sort-batch",
    "delaunay",
    "lp",
    "lp-d",
    "closest-pair",
    "enclosing",
    "le-lists",
    "scc",
];

/// The problems with a first-class relaxed loop (no fallback).
const NATIVE_RELAXED: [&str; 4] = ["sort", "closest-pair", "delaunay", "scc"];

/// A small but non-trivial instance per problem.
fn small_spec(name: &str) -> WorkloadSpec {
    let spec = WorkloadSpec::new(256, 42);
    match name {
        "lp-d" => spec.param(3.0),
        "le-lists" => spec.param(4.0),
        _ => spec,
    }
}

#[test]
fn relaxed_answers_match_parallel_for_all_problems() {
    let reg = registry();
    for name in ALL_PROBLEMS {
        let spec = small_spec(name);
        let par_cfg = RunConfig::new().seed(11).parallel().instrument(false);
        let (par, _) = reg.solve(name, &spec, &par_cfg).unwrap();
        for k in [1usize, 4, 64] {
            let rel_cfg = RunConfig::new().seed(11).relaxed(k).instrument(false);
            let (rel, report) = reg.solve(name, &spec, &rel_cfg).unwrap();
            assert_eq!(
                par.answer(),
                rel.answer(),
                "{name}: relaxed:{k} answer diverges from parallel"
            );
            // The report carries the requested mode even through fallback.
            assert_eq!(report.mode, ExecMode::Relaxed { k }, "{name} k={k}");
            if NATIVE_RELAXED.contains(&name) {
                assert_eq!(
                    report.relaxed_fallback, None,
                    "{name}: native relaxed loop must not report a fallback"
                );
            } else {
                let reason = report
                    .relaxed_fallback
                    .as_deref()
                    .unwrap_or_else(|| panic!("{name}: fallback ran without a reported reason"));
                assert!(
                    reason.contains("exact parallel"),
                    "{name}: fallback reason `{reason}` does not name the exact schedule"
                );
            }
            // The relaxed counters survive the serving envelope.
            let back = RunReport::from_json(&report.to_json()).unwrap();
            assert_eq!(back.mode, report.mode, "{name} k={k}");
            assert_eq!(back.rank_inversions, report.rank_inversions, "{name}");
            assert_eq!(back.wasted_retries, report.wasted_retries, "{name}");
            assert_eq!(back.relaxed_fallback, report.relaxed_fallback, "{name}");
        }
    }
}

#[test]
fn relaxed_answers_are_width_invariant() {
    // Pops happen on the coordinating thread, so the relaxed schedule —
    // and hence the answer — is a function of (k, seed) alone; pool width
    // only changes who executes the popped work.
    let reg = registry();
    for name in ALL_PROBLEMS {
        let spec = small_spec(name);
        let base = reg
            .solve(name, &spec, &RunConfig::new().seed(5).relaxed(4).threads(1))
            .unwrap()
            .0;
        for width in 2..=8usize {
            let cfg = RunConfig::new().seed(5).relaxed(4).threads(width);
            let (got, _) = reg.solve(name, &spec, &cfg).unwrap();
            assert_eq!(
                base.answer(),
                got.answer(),
                "{name}: relaxed answer changed between width 1 and {width}"
            );
        }
    }
}

#[test]
fn relaxed_k1_reports_zero_rank_inversions_natively() {
    // k = 1 is a single exact priority queue: the pop order is the exact
    // priority order, so the measured relaxation must be zero.
    let reg = registry();
    for name in NATIVE_RELAXED {
        let spec = small_spec(name);
        let cfg = RunConfig::new().seed(11).relaxed(1).instrument(false);
        let (_, report) = reg.solve(name, &spec, &cfg).unwrap();
        assert_eq!(
            report.rank_inversions, 0,
            "{name}: k=1 must pop in exact priority order"
        );
    }
}
