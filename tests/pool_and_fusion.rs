//! Integration tests for the persistent thread pool underneath the engine:
//! pool reuse across `Runner::run` calls, nested parallelism staying
//! on-pool, panic propagation, spawn accounting, and property-based
//! sequential-equivalence of every combinator under randomized stealing at
//! 1–8 threads.

use proptest::prelude::*;
use rayon::prelude::*;
use ri_core::engine::{Problem, RunConfig, Runner};
use ri_pram::random_permutation;
use ri_sort::SortProblem;

/// Two engine runs with the same thread count reuse one cached pool: the
/// worker thread ids are identical and no new worker threads are spawned
/// by the second run.
#[test]
fn runner_runs_reuse_one_pool_with_stable_worker_ids() {
    let keys = random_permutation(20_000, 5);
    let problem = SortProblem::new(&keys);
    let cfg = RunConfig::new().parallel().threads(3);

    let (first, _) = problem.solve(&cfg);
    let pool_after_first = rayon::cached_pool(3);
    let ids_after_first = pool_after_first.worker_ids();

    let (second, _) = problem.solve(&cfg);
    let pool_after_second = rayon::cached_pool(3);

    assert_eq!(first.sorted_indices, second.sorted_indices);
    assert!(
        std::sync::Arc::ptr_eq(&pool_after_first, &pool_after_second),
        "both runs must resolve to one cached pool"
    );
    assert_eq!(
        pool_after_second.worker_ids(),
        ids_after_first,
        "worker ids must be stable across runs"
    );
    assert_eq!(ids_after_first.len(), 3);
}

/// Parallel work started from inside an installed run — including from
/// crew helper threads — sees the pool's width, not the machine default:
/// nested parallelism stays sized by the pool.
#[test]
fn nested_parallelism_from_workers_stays_on_pool() {
    let runner = Runner::new(RunConfig::new().parallel().threads(5));
    let widths: Vec<usize> = runner.install(|| {
        (0..20_000usize)
            .into_par_iter()
            .map(|_| {
                // An inner parallel region launched from whichever thread
                // (caller or helper) is executing this chunk.
                let inner: Vec<usize> = (0..4096usize)
                    .into_par_iter()
                    .map(|_| rayon::current_num_threads())
                    .collect();
                inner[0]
            })
            .collect()
    });
    assert!(
        widths.iter().all(|&w| w == 5),
        "nested regions fell off-pool: {:?}",
        widths.iter().take(8).collect::<Vec<_>>()
    );
}

/// A `threads == 1` config must bypass the pool entirely: the whole run
/// executes inline on this thread, spawning no helper threads (the
/// helper-spawn counter is per-thread, so concurrent tests cannot
/// perturb it).
#[test]
fn single_thread_config_bypasses_the_pool() {
    let keys = random_permutation(50_000, 9);
    let problem = SortProblem::new(&keys);
    let helpers_before = rayon::helper_threads_spawned();
    let (out, report) = problem.solve(&RunConfig::new().parallel().threads(1));
    assert_eq!(report.threads, 1);
    assert_eq!(out.sorted_indices.len(), 50_000);
    assert_eq!(
        rayon::helper_threads_spawned(),
        helpers_before,
        "threads=1 must spawn no helpers"
    );

    // Sequential mode takes the same inline path.
    let helpers_before = rayon::helper_threads_spawned();
    let _ = problem.solve(&RunConfig::new().sequential());
    assert_eq!(rayon::helper_threads_spawned(), helpers_before);
}

/// A panic inside a parallel region propagates to the installing caller
/// with its original payload, whichever crew member hit it.
#[test]
fn panics_propagate_through_parallel_regions() {
    let runner = Runner::new(RunConfig::new().parallel().threads(4));
    let data: Vec<usize> = (0..100_000).collect();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        runner.install(|| {
            data.par_iter().for_each(|&x| {
                if x == 90_123 {
                    panic!("iteration {x} failed");
                }
            });
        })
    }));
    let payload = result.expect_err("panic must cross the region boundary");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("90123"), "payload lost: {msg:?}");
}

/// A panic in a `'static` job stolen by a pool worker is caught: the
/// worker survives, the payload is kept, and later jobs still run.
#[test]
fn panics_in_stolen_pool_jobs_leave_the_pool_alive() {
    let pool = rayon::cached_pool(2);
    let before = pool.panic_count();
    pool.spawn(|| panic!("stolen job panicked"));
    pool.wait_idle();
    assert_eq!(pool.panic_count(), before + 1);
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let done2 = std::sync::Arc::clone(&done);
    pool.spawn(move || done2.store(true, std::sync::atomic::Ordering::SeqCst));
    pool.wait_idle();
    assert!(done.load(std::sync::atomic::Ordering::SeqCst));
}

/// Outputs of the reference pipeline: mapped values, filtered sum, first
/// match, and zip-enumerate pairs.
type PipelineOutputs = (Vec<u64>, u64, Option<u64>, Vec<(usize, u64)>);

/// Sequential references for the combinator equivalence property.
fn reference_pipeline(xs: &[u64]) -> PipelineOutputs {
    let mapped: Vec<u64> = xs.iter().map(|&x| x.wrapping_mul(3) ^ 1).collect();
    let sum: u64 = xs
        .iter()
        .filter(|&&x| x % 3 == 0)
        .map(|&x| x / 2)
        .fold(0u64, u64::wrapping_add);
    let first_big = xs.iter().copied().find(|&x| x % 97 == 13);
    let enumerated: Vec<(usize, u64)> = xs
        .iter()
        .zip(xs.iter().skip(1))
        .map(|(&a, &b)| a.wrapping_add(b))
        .enumerate()
        .collect();
    (mapped, sum, first_big, enumerated)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every combinator path — fused map/collect, filter+map+reduce,
    /// find_first, zip+enumerate, fold, flat_map_iter, pack/scan — equals
    /// its sequential reference under randomized stealing at 1–8 threads.
    #[test]
    fn combinators_match_sequential_at_any_width(
        xs in proptest::collection::vec(any::<u64>(), 0..6000),
        threads in 1usize..=8,
    ) {
        let runner = Runner::new(RunConfig::new().parallel().threads(threads));
        let (want_map, want_sum, want_first, want_enum) = reference_pipeline(&xs);
        let (got_map, got_sum, got_first, got_enum) = runner.install(|| {
            let m: Vec<u64> = xs.par_iter().map(|&x| x.wrapping_mul(3) ^ 1).collect();
            let s: u64 = xs
                .par_iter()
                .copied()
                .filter(|&x| x % 3 == 0)
                .map(|x| x / 2)
                .reduce(|| 0u64, u64::wrapping_add);
            let f = xs.par_iter().find_first(|&&x| x % 97 == 13).copied();
            let e: Vec<(usize, u64)> = xs
                .par_iter()
                .zip(xs[1.min(xs.len())..].par_iter())
                .map(|(&a, &b)| a.wrapping_add(b))
                .enumerate()
                .collect();
            (m, s, f, e)
        });
        prop_assert_eq!(got_map, want_map);
        prop_assert_eq!(got_sum, want_sum);
        prop_assert_eq!(got_first, want_first);
        prop_assert_eq!(got_enum, want_enum);
    }

    /// The pram primitives built on the pool agree with their references
    /// at every width too (scan feeds pack; radix must stay stable).
    #[test]
    fn primitives_match_sequential_at_any_width(
        xs in proptest::collection::vec(0usize..1000, 0..6000),
        threads in 1usize..=8,
    ) {
        let runner = Runner::new(RunConfig::new().parallel().threads(threads));
        let flags: Vec<bool> = xs.iter().map(|&x| x % 3 == 0).collect();
        let (got_scan, got_pack, got_sorted) = runner.install(|| {
            let scan = ri_pram::exclusive_scan_usize(&xs);
            let packed = ri_pram::pack(&xs, &flags);
            let mut sorted: Vec<(u64, usize)> =
                xs.iter().enumerate().map(|(i, &x)| ((x % 16) as u64, i)).collect();
            ri_pram::radix_sort_by_key(&mut sorted, |&(k, _)| k);
            (scan, packed, sorted)
        });
        let mut acc = 0usize;
        let mut want_scan = Vec::with_capacity(xs.len());
        for &x in &xs {
            want_scan.push(acc);
            acc += x;
        }
        prop_assert_eq!(got_scan, (want_scan, acc));
        let want_pack: Vec<usize> =
            xs.iter().zip(&flags).filter(|(_, &f)| f).map(|(&x, _)| x).collect();
        prop_assert_eq!(got_pack, want_pack);
        let mut want_sorted: Vec<(u64, usize)> =
            xs.iter().enumerate().map(|(i, &x)| ((x % 16) as u64, i)).collect();
        want_sorted.sort_by_key(|&(k, i)| (k, i)); // stable order
        prop_assert_eq!(got_sorted, want_sorted);
    }
}
