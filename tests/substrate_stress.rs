//! Stress and failure-injection tests for the substrates, at the
//! integration level: larger sizes than unit tests, adversarial shapes,
//! and cross-checks between independent implementations.

use parallel_ri::prelude::*;

#[test]
fn knuth_shuffle_scales_and_matches() {
    let n = 1 << 16;
    let h = parallel_ri::pram::knuth_targets(n, 5);
    let seq = parallel_ri::pram::knuth_shuffle_sequential(&h);
    let (par, rounds) = parallel_ri::pram::knuth_shuffle_parallel(&h);
    assert_eq!(seq, par);
    assert!(
        rounds < 8 * 16,
        "shuffle dependence depth {rounds} not O(log n)"
    );
    // And the result is the uniform permutation family the algorithms
    // consume: feed it through the sorter as a round-trip.
    let (sorted, _) = SortProblem::new(&par).solve(&RunConfig::new());
    let recovered: Vec<usize> = sorted.sorted_indices.iter().map(|&i| par[i]).collect();
    assert_eq!(recovered, (0..n).collect::<Vec<_>>());
}

#[test]
fn deterministic_scc_agrees_with_eager_on_all_families() {
    use parallel_ri::graph::generators as gen;
    let n = 1 << 10;
    let graphs = [
        gen::gnm(n, 3 * n, 1, false),
        gen::random_dag(n, 3 * n, 2),
        gen::rmat(10, 4 * n, 3),
        gen::planted_sccs(&[n / 16; 16], n, n, 4).0,
    ];
    for (gi, g) in graphs.iter().enumerate() {
        let order = random_permutation(g.num_vertices(), 7 + gi as u64);
        let (eager, _) = SccProblem::new(g)
            .with_order(order.clone())
            .solve(&RunConfig::new());
        let det = parallel_ri::scc::scc_parallel_deterministic(g, &order);
        let want = canonical_labels(&tarjan_scc(g));
        assert_eq!(canonical_labels(&eager.comp), want, "eager, graph {gi}");
        assert_eq!(
            canonical_labels(&det.result.comp),
            want,
            "deterministic, graph {gi}"
        );
    }
}

#[test]
fn delaunay_survives_adversarial_mixtures() {
    // Mixture of collinear runs, duplicated-then-deduped clusters, and a
    // near-circle ring: everything the exact predicates must absorb.
    let mut pts = Vec::new();
    for i in 0..50 {
        pts.push(Point2::new(i as f64, 0.0)); // horizontal line
        pts.push(Point2::new(0.0, i as f64 + 1.0)); // vertical line
    }
    for p in PointDistribution::NearCircle.generate(200, 8) {
        pts.push(Point2::new(p.x * 20.0 + 25.0, p.y * 20.0 + 25.0));
    }
    for p in PointDistribution::Clusters(3).generate(200, 9) {
        pts.push(Point2::new(p.x * 10.0, p.y * 10.0 + 5.0));
    }
    let pts = ri_geometry::distributions::dedup_points(pts);
    let order = random_permutation(pts.len(), 10);
    let shuffled: Vec<Point2> = order.iter().map(|&i| pts[i]).collect();

    let problem = DelaunayProblem::new(&shuffled);
    let (seq, _) = problem.solve(&RunConfig::new().sequential());
    let (par, _) = problem.solve(&RunConfig::new().parallel());
    seq.mesh.validate().expect("sequential mesh valid");
    par.mesh.validate().expect("parallel mesh valid");
    assert_eq!(seq.stats, par.stats, "identical ReplaceBoundary calls");
}

#[test]
fn le_lists_weighted_vs_unweighted_consistency() {
    // On a unit-weighted graph, the weighted code path must agree with
    // itself under an explicit all-ones weighting.
    use parallel_ri::graph::generators::gnm;
    let n = 500;
    let g = gnm(n, 4 * n, 11, true);
    let mut edges = Vec::new();
    let mut weights = Vec::new();
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            edges.push((u, v));
            weights.push(1.0);
        }
    }
    let gw = CsrGraph::from_weighted_edges(n, &edges, &weights);
    let order = random_permutation(n, 12);
    let (a, _) = LeListsProblem::new(&g)
        .with_order(order.clone())
        .solve(&RunConfig::new());
    let (b, _) = LeListsProblem::new(&gw)
        .with_order(order)
        .solve(&RunConfig::new());
    assert_eq!(a.lists, b.lists);
}

#[test]
fn sort_handles_pathological_key_patterns() {
    // Sawtooth, organ-pipe, and nearly-sorted inputs (distinct keys) —
    // correctness under adversarial (non-random) orders.
    let n = 4000usize;
    let patterns: Vec<Vec<i64>> = vec![
        (0..n).map(|i| ((i % 97) * 1000 + i / 97) as i64).collect(), // sawtooth
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    i as i64
                } else {
                    (2 * n - i) as i64
                }
            })
            .collect(), // organ pipe
        (0..n)
            .map(|i| i as i64 + if i % 100 == 0 { 150 } else { 0 })
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect(), // nearly sorted with spikes, deduped
    ];
    for (pi, keys) in patterns.iter().enumerate() {
        let problem = SortProblem::new(keys);
        let (seq, _) = problem.solve(&RunConfig::new().sequential());
        let (par, _) = problem.solve(&RunConfig::new().parallel());
        assert_eq!(seq.tree, par.tree, "pattern {pi}");
        let got: Vec<&i64> = seq.sorted(keys);
        let mut want: Vec<&i64> = keys.iter().collect();
        want.sort();
        assert_eq!(got, want, "pattern {pi}");
    }
}
