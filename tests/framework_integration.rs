//! Integration tests: the §2 framework executors driving the real
//! algorithms across crate boundaries.

use parallel_ri::framework::Type1Algorithm;
use parallel_ri::prelude::*;

/// Plug the BST sort into the *generic* Type 1 round scheduler and check
/// that the number of rounds it measures equals the dependence depth the
/// specialised parallel sort reports — the two schedulers realise the same
/// dependence DAG.
struct GenericBstSort<'a> {
    keys: &'a [usize],
    seq_tree: ri_sort::Bst,
    inserted: Vec<std::sync::atomic::AtomicBool>,
    parent: Vec<Option<usize>>,
}

impl<'a> GenericBstSort<'a> {
    fn new(keys: &'a [usize]) -> Self {
        // The dependence of iteration i is its parent in the final tree
        // (§3: the transitive reduction of the dependence graph is the BST
        // itself) — compute it once via the sequential algorithm.
        let (seq, _) = SortProblem::new(keys).solve(&RunConfig::new().sequential());
        let n = keys.len();
        let mut parent = vec![None; n];
        for v in 0..n {
            for child in [seq.tree.left[v], seq.tree.right[v]] {
                if child != u64::MAX {
                    parent[child as usize] = Some(v);
                }
            }
        }
        GenericBstSort {
            keys,
            seq_tree: seq.tree,
            inserted: (0..n).map(|_| Default::default()).collect(),
            parent,
        }
    }
}

impl Type1Algorithm for GenericBstSort<'_> {
    fn len(&self) -> usize {
        self.keys.len()
    }
    fn ready(&self, k: usize) -> bool {
        match self.parent[k] {
            None => true,
            Some(p) => self.inserted[p].load(std::sync::atomic::Ordering::Relaxed),
        }
    }
    fn run(&mut self, k: usize) {
        self.inserted[k].store(true, std::sync::atomic::Ordering::Relaxed);
    }
}

#[test]
fn generic_type1_scheduler_matches_specialised_sort_depth() {
    let runner = Runner::new(RunConfig::new());
    for seed in 0..5 {
        let keys = random_permutation(4000, seed);
        let mut generic = GenericBstSort::new(&keys);
        let depth_tree = generic.seq_tree.dependence_depth();
        let report = runner.run(&mut Type1Adapter(&mut generic));
        let (_, par_report) = SortProblem::new(&keys).solve(&RunConfig::new());
        assert_eq!(report.depth, depth_tree, "generic scheduler rounds");
        assert_eq!(par_report.depth, depth_tree, "specialised sort rounds");
    }
}

#[test]
fn dependence_depth_scales_logarithmically_across_algorithms() {
    // One sweep, three algorithms, one claim: measured depth ~ c·log n.
    for &n in &[1usize << 10, 1 << 12, 1 << 14] {
        let log2n = (n as f64).log2();

        let cfg = RunConfig::new();
        let keys = random_permutation(n, 1);
        let sort_rounds = SortProblem::new(&keys).solve(&cfg).1.depth as f64;
        assert!(sort_rounds < 6.0 * log2n, "sort depth at n={n}");

        let pts = PointDistribution::UniformSquare.generate(n, 2);
        let dt_rounds = DelaunayProblem::new(&pts).solve(&cfg).1.depth as f64;
        assert!(dt_rounds < 12.0 * log2n, "delaunay depth at n={n}");

        let g = parallel_ri::graph::generators::gnm(n, 4 * n, 3, false);
        let scc_rounds = SccProblem::new(&g).solve(&cfg.clone().seed(4)).1.depth as f64;
        assert!(scc_rounds <= log2n + 2.0, "scc rounds at n={n}");
    }
}

#[test]
fn specials_track_harmonic_series_across_type2_algorithms() {
    let n = 1 << 12;
    let trials = 6;
    let hn = harmonic(n);
    let (mut lp_total, mut cp_total, mut sed_total) = (0usize, 0usize, 0usize);
    let cfg = RunConfig::new();
    for seed in 0..trials {
        let inst = ri_lp::workloads::tangent_instance(n, seed);
        lp_total += LpProblem::new(&inst).solve(&cfg).1.specials.len();

        let pts = PointDistribution::UniformSquare.generate(n, seed);
        cp_total += ClosestPairProblem::new(&pts).solve(&cfg).1.specials.len();
        sed_total += EnclosingProblem::new(&pts).solve(&cfg).1.specials.len();
    }
    let (lp_avg, cp_avg, sed_avg) = (
        lp_total as f64 / trials as f64,
        cp_total as f64 / trials as f64,
        sed_total as f64 / trials as f64,
    );
    // §5: P[special at j] ≤ 2/j (LP, closest pair) or 3/j (SED).
    assert!(lp_avg <= 2.0 * hn + 2.0, "LP specials {lp_avg} vs 2H_n");
    assert!(cp_avg <= 2.0 * hn + 2.0, "CP specials {cp_avg} vs 2H_n");
    assert!(sed_avg <= 3.0 * hn + 2.0, "SED specials {sed_avg} vs 3H_n");
}

#[test]
fn corollary_2_4_dependence_counts() {
    // Separating dependences ⇒ expected total dependences ≤ 2 n ln n.
    // BST comparisons are exactly the dependences of the sort.
    let n = 1 << 13;
    let bound = 2.0 * (n as f64) * (n as f64).ln();
    let mut total = 0u64;
    let trials = 5;
    for seed in 0..trials {
        let keys = random_permutation(n, seed);
        total += SortProblem::new(&keys)
            .solve(&RunConfig::new().sequential())
            .0
            .comparisons;
    }
    let avg = total as f64 / trials as f64;
    assert!(
        avg < bound,
        "avg comparisons {avg} above 2 n ln n = {bound}"
    );
    // And it is within 2x of the bound (the true constant is ~1.39 n log₂ n
    // = 2 n ln n exactly, minus lower-order terms).
    assert!(avg > 0.5 * bound, "avg comparisons {avg} implausibly small");
}
