//! End-to-end pipelines across crates: realistic compositions a downstream
//! user would build, checked for internal consistency.

use std::collections::HashMap;

use parallel_ri::prelude::*;

/// Geometry pipeline: points → Delaunay → closest pair must be an edge of
/// the triangulation (a classic DT property), and the enclosing disk must
/// contain the whole mesh.
#[test]
fn delaunay_closest_pair_enclosing_consistency() {
    for seed in 0..4 {
        let pts = {
            let raw = ri_geometry::distributions::dedup_points(
                PointDistribution::UniformSquare.generate(600, seed),
            );
            let order = random_permutation(raw.len(), seed ^ 0xAB);
            order.iter().map(|&i| raw[i]).collect::<Vec<_>>()
        };

        let cfg = RunConfig::new();
        let (dt, _) = DelaunayProblem::new(&pts).solve(&cfg);
        dt.mesh.validate().unwrap();

        // The closest pair (computed independently) must be a Delaunay edge.
        let (cp, _) = ClosestPairProblem::new(&pts).solve(&cfg);
        // Map from the caller's order to the mesh's (seed-reordered) points:
        // one hash map keyed on coordinate bits, built once (points are
        // exact copies, so bit equality is point equality).
        let index: HashMap<(u64, u64), u32> = dt
            .mesh
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| ((p.x.to_bits(), p.y.to_bits()), i as u32))
            .collect();
        let locate = |p: Point2| -> u32 {
            *index
                .get(&(p.x.to_bits(), p.y.to_bits()))
                .expect("point survives reordering")
        };
        let (a, b) = (
            locate(pts[cp.pair.0 as usize]),
            locate(pts[cp.pair.1 as usize]),
        );
        let is_edge = dt.mesh.finite_triangles().iter().any(|t| {
            let has = |x: u32| t.contains(&x);
            has(a) && has(b)
        });
        assert!(is_edge, "closest pair not a Delaunay edge at seed {seed}");

        // The smallest enclosing disk contains every mesh point.
        let (sed, _) = EnclosingProblem::new(&pts).solve(&cfg);
        for &p in &dt.mesh.points {
            assert!(sed.disk.contains(p));
        }
    }
}

/// Graph pipeline: SCC condensation + LE-lists on the same graph. Inside
/// one SCC every vertex has finite distance to the component's LE-list
/// sources; across the condensation DAG, LE-list entries can only flow in
/// edge direction.
#[test]
fn scc_and_le_lists_agree_on_reachability() {
    for seed in 0..3 {
        let n = 400;
        let g = parallel_ri::graph::generators::gnm(n, 3 * n, seed, false);
        let order = random_permutation(n, seed ^ 0x77);

        let cfg = RunConfig::new();
        let (scc, _) = SccProblem::new(&g).with_order(order.clone()).solve(&cfg);
        let labels = canonical_labels(&scc.comp);
        let (le, _) = LeListsProblem::new(&g)
            .with_order(order.clone())
            .solve(&cfg);

        // An LE-list entry (src, d) at u certifies a path src → u. If both
        // endpoints are in the same SCC that is consistent by definition;
        // otherwise src's component must precede u's in the condensation —
        // verified via plain BFS reachability.
        for (u, list) in le.lists.iter().enumerate() {
            for &(src, _) in list {
                if labels[src as usize] != labels[u] {
                    let d = ri_graph::bfs_distances(&g, src);
                    assert_ne!(
                        d[u],
                        u32::MAX,
                        "LE entry {src}->{u} without reachability (seed {seed})"
                    );
                }
            }
        }
    }
}

/// The random permutation is the shared substrate: all algorithms consume
/// the same `Permutation` type, and rank/order stay inverse through every
/// crate boundary.
#[test]
fn permutation_roundtrip_through_algorithms() {
    let n = 1000;
    let perm = Permutation::uniform(n, 99);
    // Sort the order array: the result must be the identity ranking.
    let (sorted, _) = SortProblem::new(&perm.order).solve(&RunConfig::new());
    let recovered: Vec<usize> = sorted
        .sorted_indices
        .iter()
        .map(|&i| perm.order[i])
        .collect();
    assert_eq!(recovered, (0..n).collect::<Vec<_>>());
    for k in 0..n {
        assert_eq!(perm.rank[perm.order[k]], k);
    }
}

/// Determinism across the whole stack: same seeds ⇒ bit-identical outputs,
/// including every work counter.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let cfg = RunConfig::new().seed(5);
        let pts = PointDistribution::Clusters(5).generate(500, 3);
        let (dt, _) = DelaunayProblem::new(&pts).solve(&cfg);
        let g = parallel_ri::graph::generators::gnm_weighted(300, 1200, 4, false);
        let (le, le_report) = LeListsProblem::new(&g).solve(&cfg);
        (
            dt.stats.clone(),
            dt.mesh.finite_triangles().len(),
            le.total_entries(),
            le_report.checks,
        )
    };
    assert_eq!(run(), run(), "pipeline must be deterministic given seeds");
}
