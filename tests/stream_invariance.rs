//! Batch-split invariance of the streaming session layer: for EVERY
//! registered problem, feeding the fixed instance through
//! [`construct_incremental`] in arbitrary batch widths (1..=8) must end
//! in exactly the one-shot solve — same answer, same deterministic round
//! trace, bit for bit. This is the property the serving layer's
//! migration and witness replay both stand on: a session is nothing but
//! its spec and batch counts, so rebuilding it anywhere reproduces it.
//!
//! The deltas in between are problem-defined (prefix answers of the
//! capacity-sized instance), but the *positions* are checked throughout:
//! batch indices, cumulative totals and the completion flag must track
//! the feed exactly, native adapters and the re-solve fallback alike.

use parallel_ri::registry;
use proptest::prelude::*;
use ri_core::engine::registry::WorkloadSpec;
use ri_core::engine::{RoundTrace, RunConfig};

/// Every registered problem, with a capacity large enough to clear its
/// minimum instance size while keeping proptest cases quick.
const PROBLEMS: [(&str, usize); 9] = [
    ("sort", 28),
    ("sort-batch", 28),
    ("delaunay", 24),
    ("lp", 26),
    ("lp-d", 26),
    ("closest-pair", 26),
    ("enclosing", 24),
    ("le-lists", 24),
    ("scc", 26),
];

/// Turn a raw width list into a batch plan that exactly covers
/// `capacity`: widths are used in order (clamped to the remainder), and
/// a final batch tops the feed up if the list runs short.
fn plan(widths: &[usize], capacity: usize) -> Vec<usize> {
    let mut batches = Vec::new();
    let mut remaining = capacity;
    for &w in widths {
        if remaining == 0 {
            break;
        }
        let count = w.min(remaining);
        batches.push(count);
        remaining -= count;
    }
    if remaining > 0 {
        batches.push(remaining);
    }
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The core invariance: any split of the feed reaches the one-shot
    /// answer and trace, for all nine problems.
    #[test]
    fn any_batch_split_matches_the_one_shot_solve(
        widths in proptest::collection::vec(1usize..=8, 1..12),
        wseed in 0u64..1000,
        cseed in 0u64..1000,
    ) {
        let reg = registry();
        for (problem, capacity) in PROBLEMS {
            let spec = WorkloadSpec::new(capacity, wseed);
            let cfg = RunConfig::new().seed(cseed);
            let batches = plan(&widths, capacity);

            let mut inc = reg
                .construct_incremental(problem, &spec)
                .unwrap_or_else(|e| panic!("{problem}: construct_incremental: {e}"));
            prop_assert_eq!(inc.capacity(), capacity, "{}", problem);

            let mut cumulative = 0usize;
            let mut last = None;
            for (i, &count) in batches.iter().enumerate() {
                let (delta, _) = inc
                    .feed(count, &cfg)
                    .unwrap_or_else(|e| panic!("{problem}: batch {i} (count {count}): {e}"));
                cumulative += count;
                prop_assert_eq!(delta.batch, i, "{}", problem);
                prop_assert_eq!(delta.count, count, "{}", problem);
                prop_assert_eq!(delta.cumulative, cumulative, "{}", problem);
                prop_assert_eq!(delta.capacity, capacity, "{}", problem);
                prop_assert_eq!(delta.complete, cumulative == capacity, "{}", problem);
                if delta.complete {
                    prop_assert!(!delta.pending, "{}: a complete feed cannot be pending", problem);
                }
                last = Some(delta);
            }
            prop_assert_eq!(inc.absorbed(), capacity, "{}", problem);

            let last = last.expect("at least one batch");
            let (one_shot, report) = reg
                .solve(problem, &spec, &cfg)
                .unwrap_or_else(|e| panic!("{problem}: one-shot solve: {e}"));
            prop_assert_eq!(
                &last.answer,
                one_shot.answer(),
                "{}: streamed final answer != one-shot (widths {:?})",
                problem,
                batches
            );
            prop_assert_eq!(
                &last.trace,
                &RoundTrace::from_report(&report),
                "{}: streamed final trace != one-shot (widths {:?})",
                problem,
                batches
            );

            // Overfeeding past capacity is rejected without corrupting state.
            prop_assert!(inc.feed(1, &cfg).is_err(), "{}", problem);
            prop_assert_eq!(inc.absorbed(), capacity, "{}", problem);
        }
    }

    /// Determinism across splits: two *different* splits of the same
    /// instance agree on every shared cumulative prefix (not just the
    /// final one) — the answer after absorbing k elements is a function
    /// of k alone, never of how the feed was chopped.
    #[test]
    fn shared_prefixes_agree_across_splits(
        widths_a in proptest::collection::vec(1usize..=8, 1..12),
        widths_b in proptest::collection::vec(1usize..=8, 1..12),
        wseed in 0u64..1000,
    ) {
        let reg = registry();
        let cfg = RunConfig::new().seed(3);
        for (problem, capacity) in [("sort", 28), ("closest-pair", 26), ("scc", 26)] {
            let spec = WorkloadSpec::new(capacity, wseed);
            let run = |widths: &[usize]| {
                let mut inc = reg.construct_incremental(problem, &spec).unwrap();
                plan(widths, capacity)
                    .iter()
                    .map(|&count| {
                        let (delta, _) = inc.feed(count, &cfg).unwrap();
                        (delta.cumulative, delta.answer, delta.delta.write())
                    })
                    .collect::<Vec<_>>()
            };
            let a = run(&widths_a);
            let b = run(&widths_b);
            for (cum, answer, _) in &a {
                if let Some((_, other, _)) = b.iter().find(|(c, _, _)| c == cum) {
                    prop_assert_eq!(
                        answer,
                        other,
                        "{}: answers diverge at cumulative {}",
                        problem,
                        cum
                    );
                }
            }
        }
    }
}
