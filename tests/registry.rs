//! Registry-level integration tests: every registered problem constructs
//! and solves by name, and — the paper's central claim — the parallel
//! schedule reproduces the sequential output for **all** of them, checked
//! through one object-safe code path (PR 1 only covered one algorithm per
//! type class).

use parallel_ri::registry;
use ri_core::engine::json;
use ri_core::{ExecMode, RunConfig, WorkloadSpec};

/// Every name the workspace registers, in registration order.
const ALL_PROBLEMS: [&str; 9] = [
    "sort",
    "sort-batch",
    "delaunay",
    "lp",
    "lp-d",
    "closest-pair",
    "enclosing",
    "le-lists",
    "scc",
];

/// A small but non-trivial instance per problem.
fn small_spec(name: &str) -> WorkloadSpec {
    let spec = WorkloadSpec::new(256, 42);
    match name {
        "lp-d" => spec.param(3.0),
        "le-lists" => spec.param(4.0),
        _ => spec,
    }
}

#[test]
fn registry_lists_every_problem() {
    let reg = registry();
    assert_eq!(reg.names(), ALL_PROBLEMS.to_vec());
    assert_eq!(reg.len(), ALL_PROBLEMS.len());
}

#[test]
fn every_registered_name_constructs_and_solves() {
    let reg = registry();
    for name in ALL_PROBLEMS {
        let problem = reg
            .construct(name, &small_spec(name))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(problem.name(), name);
        let (summary, report) = problem.solve_erased(&RunConfig::new().seed(7));
        assert!(report.items > 0, "{name}: empty report");
        assert!(report.depth > 0, "{name}: no measured depth");
        // The summary and the full response shape must be valid JSON.
        let parsed = json::parse(&summary.to_json()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(parsed.get("answer").is_some(), "{name}: no answer section");
        assert!(
            parsed.get("metrics").is_some(),
            "{name}: no metrics section"
        );
        json::parse(&report.to_json()).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn sequential_and_parallel_answers_agree_for_all_problems() {
    let reg = registry();
    for name in ALL_PROBLEMS {
        let spec = small_spec(name);
        // Same run seed: problems that draw processing orders at solve
        // time (le-lists, scc) must see the same order in both modes.
        let seq_cfg = RunConfig::new().seed(11).sequential().instrument(false);
        let par_cfg = RunConfig::new().seed(11).parallel().instrument(false);
        let (seq, seq_report) = reg.solve(name, &spec, &seq_cfg).unwrap();
        let (par, par_report) = reg.solve(name, &spec, &par_cfg).unwrap();
        assert_eq!(
            seq.answer(),
            par.answer(),
            "{name}: parallel answer diverges from sequential"
        );
        assert_eq!(seq_report.mode, ExecMode::Sequential, "{name}");
        assert_eq!(par_report.mode, ExecMode::Parallel, "{name}");
        assert_eq!(seq_report.items, par_report.items, "{name}");
        // The sequential dependence chain is the input order itself; the
        // parallel schedule must be strictly shallower on these sizes.
        assert!(
            par_report.depth < seq_report.depth,
            "{name}: parallel depth {} not below sequential {}",
            par_report.depth,
            seq_report.depth
        );
    }
}

#[test]
fn solve_is_deterministic_per_seed() {
    let reg = registry();
    for name in ALL_PROBLEMS {
        let spec = small_spec(name);
        let cfg = RunConfig::new().seed(3).instrument(false);
        let (a, _) = reg.solve(name, &spec, &cfg).unwrap();
        let (b, _) = reg.solve(name, &spec, &cfg).unwrap();
        assert_eq!(a, b, "{name}: same spec + config must reproduce");
    }
}

#[test]
fn unknown_problem_is_a_clean_error() {
    let reg = registry();
    let err = reg
        .solve("sideways", &WorkloadSpec::new(8, 0), &RunConfig::new())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("unknown problem `sideways`"));
    // The error lists the full vocabulary for discoverability.
    for name in ALL_PROBLEMS {
        assert!(msg.contains(name), "error message misses {name}");
    }
}

#[test]
fn cli_request_shapes_round_trip() {
    // The `ri` driver's request halves: WorkloadSpec and RunConfig both
    // (de)serialize through the same hand-rolled JSON layer as RunReport.
    let spec = WorkloadSpec::new(512, 9).shape("uniform-disk").param(2.0);
    assert_eq!(WorkloadSpec::from_json(&spec.to_json()).unwrap(), spec);
    let cfg = RunConfig::new().seed(5).sequential().threads(2);
    assert_eq!(RunConfig::from_json(&cfg.to_json()).unwrap(), cfg);
    // Partial requests fall back to defaults, as the CLI promises.
    let partial = RunConfig::from_json("{\"mode\":\"parallel\"}").unwrap();
    assert_eq!(partial, RunConfig::default());
}
